package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestNilSafety exercises every metric method on nil receivers — the
// property that lets disabled telemetry flow through instrumented code as
// plain nil fields.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	var g *Gauge
	g.Set(3)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Error("nil gauge value != 0")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram not empty")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Error("nil registry should hand out nil metrics")
	}
	if r.Names() != nil {
		t.Error("nil registry Names != nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
	var tel *Telemetry
	if tel.Counter("x") != nil || tel.Gauge("x") != nil ||
		tel.Histogram("x", nil) != nil || tel.TraceLog() != nil {
		t.Error("nil telemetry should hand out nil handles")
	}
}

// TestRegistryGetOrCreate checks that the accessors are idempotent (same
// pointer both times) and that a name cannot change type.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c") != r.Counter("c") {
		t.Error("Counter not idempotent")
	}
	if r.Histogram("h", DepthBuckets) != r.Histogram("h", nil) {
		t.Error("Histogram not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Error("type mismatch should panic")
		}
	}()
	r.Gauge("c")
}

// TestRegistryConcurrent hammers one registry from many goroutines — both
// registration (locked) and mutation (atomic) — and checks the totals.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			h := r.Histogram("shared_nanos", NanosBuckets)
			g := r.Gauge("shared_peak")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i % 7))
				g.SetMax(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared_nanos", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("shared_peak").Value(); got != perWorker-1 {
		t.Errorf("gauge high-water = %d, want %d", got, perWorker-1)
	}
}

// TestHistogramBuckets checks sample→bucket placement against the
// cumulative counts the exporter prints.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 99, 100, 101, 5000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5+10+11+99+100+101+5000 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// le is inclusive: 10 lands in le="10", 100 in le="100".
	for _, want := range []string{
		`lat_bucket{le="10"} 2`,
		`lat_bucket{le="100"} 5`,
		`lat_bucket{le="1000"} 6`,
		`lat_bucket{le="+Inf"} 7`,
		"lat_sum 5326",
		"lat_count 7",
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusFormat checks the text exposition shape: one # TYPE per
// family, sorted series, label merging on histogram buckets.
func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_depth").Set(7)
	r.Histogram(L("h_nanos", "op", "read"), []float64{1}).Observe(0.5)
	r.Histogram(L("h_nanos", "op", "write"), []float64{1}).Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[0], "# TYPE a_depth gauge") {
		t.Errorf("series not sorted, first line %q", lines[0])
	}
	if n := strings.Count(out, "# TYPE h_nanos histogram"); n != 1 {
		t.Errorf("labeled histogram family should get one TYPE line, got %d", n)
	}
	for _, want := range []string{
		"a_depth 7",
		"b_total 2",
		`h_nanos_bucket{op="read",le="1"} 1`,
		`h_nanos_bucket{op="write",le="+Inf"} 1`,
		`h_nanos_sum{op="write"} 2`,
		`h_nanos_count{op="read"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestLabelHelper checks the L() rendering and its argument contract.
func TestLabelHelper(t *testing.T) {
	if got := L("x_total"); got != "x_total" {
		t.Errorf("L no-labels = %q", got)
	}
	if got := L("x_total", "a", "1", "b", "2"); got != `x_total{a="1",b="2"}` {
		t.Errorf("L = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd kv count should panic")
		}
	}()
	L("x", "orphan")
}
