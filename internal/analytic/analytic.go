// Package analytic implements §3.1's simple analytical model of parallel
// simulator performance, used to show why parallelizing on the
// functional/timing boundary works while naive module-boundary partitioning
// does not.
//
// Partition the simulator into components A and B running in parallel,
// taking TA and TB seconds per target cycle including one-way
// communication. Round trips occur on a fraction F of cycles with latency
// Lrt and extra per-round-trip work α. Component A then processes
//
//	CA = 1 / (TA + F × (Lrt + αAA + αBA))   cycles per second
//
// and the simulator runs at min(CA, CB).
package analytic

import "fmt"

// Component describes one side of the partition.
type Component struct {
	// T is seconds of work per target cycle, including one-way
	// communication.
	T float64
	// AlphaSelf is this component's extra work per round trip it
	// initiates; AlphaOther is its extra work per round trip the other
	// side initiates. Both are included in the round-trip latency term of
	// whichever side stalls.
	AlphaSelf, AlphaOther float64
}

// Model is the two-component partitioned simulator.
type Model struct {
	A, B Component
	// F is the fraction of target cycles that require a round trip.
	F float64
	// Lrt is the round-trip latency in seconds.
	Lrt float64
}

// RateA returns CA in target cycles per second.
func (m Model) RateA() float64 {
	return 1 / (m.A.T + m.F*(m.Lrt+m.A.AlphaSelf+m.B.AlphaOther))
}

// RateB returns CB in target cycles per second.
func (m Model) RateB() float64 {
	return 1 / (m.B.T + m.F*(m.Lrt+m.B.AlphaSelf+m.A.AlphaOther))
}

// Rate returns the simulator's throughput: min(CA, CB).
func (m Model) Rate() float64 {
	a, b := m.RateA(), m.RateB()
	if a < b {
		return a
	}
	return b
}

// MIPS returns the throughput in millions of target cycles per second —
// with the section's IPC-of-1 assumption, also millions of instructions
// per second.
func (m Model) MIPS() float64 { return m.Rate() / 1e6 }

func (m Model) String() string {
	return fmt.Sprintf("analytic{TA=%.0fns TB=%.0fns F=%.4f Lrt=%.0fns => %.2f MIPS}",
		m.A.T*1e9, m.B.T*1e9, m.F, m.Lrt*1e9, m.MIPS())
}

// The worked examples of §3.1, parameterized the way the text does. All
// latencies in nanoseconds for readability; fields convert to seconds.

const ns = 1e-9

// NaiveCachePartition is the §3.1 cautionary example: an infinitely fast
// FPGA L1 iCache bolted onto a 10 MIPS software simulator with a round trip
// every instruction (F=1, target IPC 1): 1/(100ns+469ns) = 1.8 MIPS.
func NaiveCachePartition(swNanosPerInst, lrtNanos float64) Model {
	return Model{
		A:   Component{T: swNanosPerInst * ns},
		B:   Component{T: 0},
		F:   1,
		Lrt: lrtNanos * ns,
	}
}

// NaiveCachePartitionInfiniteSW is the follow-up: "Even if the original
// simulator was infinitely fast, performance could not exceed 2.1MIPS
// because of the necessity of a round-trip communication to the FPGA for
// every instruction."
func NaiveCachePartitionInfiniteSW(lrtNanos float64) Model {
	return Model{A: Component{T: 0}, F: 1, Lrt: lrtNanos * ns}
}

// FASTPartition is the §3.1 FAST example: round trips only on branch
// mis-speculation and resolution. With branch-predictor accuracy acc and
// dynamic branch ratio br, F = (1-acc) × br × 2 (the factor of two counts
// the mispredict and the resolution round trips).
func FASTPartition(swNanosPerInst, lrtNanos, acc, branchRatio, alphaRollbackNanos float64) Model {
	return Model{
		A:   Component{T: swNanosPerInst * ns},
		B:   Component{AlphaOther: alphaRollbackNanos * ns},
		F:   (1 - acc) * branchRatio * 2,
		Lrt: lrtNanos * ns,
	}
}

// PaperExamples returns the four §3.1 worked examples with the paper's
// parameters (TA=100 ns, Lrt=469 ns, 92% predictor, 20% branches, 1000 ns
// rollback re-execution) and their published results (1.8, 2.1, 8.7 and
// 6.8 MIPS).
func PaperExamples() []struct {
	Name      string
	Model     Model
	PaperMIPS float64
} {
	return []struct {
		Name      string
		Model     Model
		PaperMIPS float64
	}{
		{"FPGA L1 iCache, 10MIPS software simulator", NaiveCachePartition(100, 469), 1.8},
		{"FPGA L1 iCache, infinitely fast software", NaiveCachePartitionInfiniteSW(469), 2.1},
		{"FAST, 92% BP, 20% branches", FASTPartition(100, 469, 0.92, 0.20, 0), 8.7},
		{"FAST with 1000ns rollback re-execution", FASTPartition(100, 469, 0.92, 0.20, 1000), 6.8},
	}
}
