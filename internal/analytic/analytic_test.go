package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func near(got, want, tolPct float64) bool {
	return math.Abs(got-want) <= want*tolPct/100
}

// TestPaperExamples checks the §3.1 arithmetic against the published
// numbers (E3): 1.8, 2.1, 8.7 and 6.8 MIPS.
func TestPaperExamples(t *testing.T) {
	for _, ex := range PaperExamples() {
		got := ex.Model.MIPS()
		if !near(got, ex.PaperMIPS, 3) {
			t.Errorf("%s: %.2f MIPS, paper says %.1f", ex.Name, got, ex.PaperMIPS)
		}
	}
}

func TestExactArithmetic(t *testing.T) {
	// 1/(100ns + 469ns) = 1.7575... MIPS
	m := NaiveCachePartition(100, 469)
	if got := m.MIPS(); math.Abs(got-1.7575) > 0.01 {
		t.Errorf("naive partition = %.4f MIPS", got)
	}
	// 1/469ns = 2.132 MIPS
	if got := NaiveCachePartitionInfiniteSW(469).MIPS(); math.Abs(got-2.132) > 0.01 {
		t.Errorf("infinite SW = %.4f MIPS", got)
	}
	// F = 0.08 × 0.2 × 2 = 0.032; 1/(100ns + 0.032×469ns) = 8.70 MIPS
	f := FASTPartition(100, 469, 0.92, 0.20, 0)
	if math.Abs(f.F-0.032) > 1e-12 {
		t.Errorf("F = %v, want 0.032", f.F)
	}
	if got := f.MIPS(); math.Abs(got-8.70) > 0.02 {
		t.Errorf("FAST = %.4f MIPS", got)
	}
	// 1/(100ns + 0.032×(469ns+1000ns)) = 6.80 MIPS
	if got := FASTPartition(100, 469, 0.92, 0.20, 1000).MIPS(); math.Abs(got-6.80) > 0.02 {
		t.Errorf("FAST+rollback = %.4f MIPS", got)
	}
}

func TestRateIsMinOfComponents(t *testing.T) {
	m := Model{
		A: Component{T: 100 * ns},
		B: Component{T: 300 * ns},
		F: 0.01, Lrt: 469 * ns,
	}
	if m.Rate() != m.RateB() {
		t.Error("slower component does not limit the simulator")
	}
	m.B.T = 10 * ns
	if m.Rate() != m.RateA() {
		t.Error("rate did not switch to the other component")
	}
}

func TestMonotonicityProperties(t *testing.T) {
	// Performance must fall as F, Lrt or T grow.
	base := FASTPartition(100, 469, 0.92, 0.20, 0)
	f := func(dF, dL, dT uint8) bool {
		m := base
		m.F += float64(dF) / 1000
		m.Lrt += float64(dL) * ns
		m.A.T += float64(dT) * ns
		return m.MIPS() <= base.MIPS()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBetterPredictorIsFaster(t *testing.T) {
	// §2.1: "The more accurate the target speculation ... the faster a
	// FAST simulator simulates that target."
	prev := 0.0
	for _, acc := range []float64{0.80, 0.90, 0.95, 0.99} {
		m := FASTPartition(100, 469, acc, 0.20, 1000).MIPS()
		if m <= prev {
			t.Errorf("accuracy %.2f gives %.2f MIPS, not above %.2f", acc, m, prev)
		}
		prev = m
	}
}

func TestString(t *testing.T) {
	if PaperExamples()[0].Model.String() == "" {
		t.Error("empty String")
	}
}
