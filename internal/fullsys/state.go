package fullsys

// Versioned, deterministic binary state for every full-system component.
// This is the serialization contract warm-start snapshots persist to disk.
// It is deliberately NOT what the functional model's rollback journal
// stores: the journal captures devices on every device-touching
// instruction, so it uses CaptureRollback closures that structure-share
// immutable internals (devices.go) instead of paying an encode/decode —
// a disk image re-serialized per wrong-path re-steer dominated whole
// experiment runs before the split.
//
// Encoding rules: every component writes a leading format-version byte and
// its fields in a fixed order through snap.Writer; LoadState validates the
// version and rejects truncated or corrupt input with an error, never a
// panic. Device `now` clocks are deliberately excluded — every bus access
// re-establishes them via Tick before use, and excluding them keeps the
// encoding a pure function of observable device state.

import (
	"repro/internal/snap"
)

// Per-component format versions. Bump when an encoding changes shape.
const (
	busStateV     = 1
	consoleStateV = 1
	timerStateV   = 1
	diskStateV    = 1
	nicStateV     = 1
	memStateV     = 1
	tlbStateV     = 1
)

func checkVersion(r *snap.Reader, what string, want uint8) error {
	if v := r.U8(); r.Err() == nil && v != want {
		return snap.Corruptf("%s state version %d, want %d", what, v, want)
	}
	return r.Err()
}

func writeScript(w *snap.Writer, script []ScriptedInput) {
	w.U32(uint32(len(script)))
	for _, s := range script {
		w.U64(s.At)
		w.Bytes32(s.Data)
	}
}

func readScript(r *snap.Reader) []ScriptedInput {
	n := int(r.U32())
	if r.Err() != nil || n == 0 {
		return nil
	}
	if n > r.Remaining()/12 { // each entry costs at least an At + a length
		r.U64() // drive the sticky reader into its truncation error
		return nil
	}
	script := make([]ScriptedInput, 0, n)
	for i := 0; i < n; i++ {
		at := r.U64()
		data := r.Bytes32()
		if r.Err() != nil {
			return nil
		}
		script = append(script, ScriptedInput{At: at, Data: data})
	}
	return script
}

// ---------------------------------------------------------------------------
// Console

// SaveState implements Device.
func (c *Console) SaveState(w *snap.Writer) {
	w.U8(consoleStateV)
	w.Bytes32(c.out)
	writeScript(w, c.script)
	w.Bytes32(c.rx)
	w.Bool(c.irqOnRx)
}

// LoadState implements Device.
func (c *Console) LoadState(r *snap.Reader) error {
	if err := checkVersion(r, "console", consoleStateV); err != nil {
		return err
	}
	out := r.Bytes32()
	script := readScript(r)
	rx := r.Bytes32()
	irqOnRx := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	c.out, c.script, c.rx, c.irqOnRx = out, script, rx, irqOnRx
	return nil
}

// ---------------------------------------------------------------------------
// Timer

// SaveState implements Device.
func (t *Timer) SaveState(w *snap.Writer) {
	w.U8(timerStateV)
	w.U64(t.interval)
	w.U64(t.nextFire)
	w.Bool(t.pending)
}

// LoadState implements Device.
func (t *Timer) LoadState(r *snap.Reader) error {
	if err := checkVersion(r, "timer", timerStateV); err != nil {
		return err
	}
	interval, nextFire, pending := r.U64(), r.U64(), r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	t.interval, t.nextFire, t.pending = interval, nextFire, pending
	return nil
}

// ---------------------------------------------------------------------------
// Disk

// sectorBlob returns the canonical encoding of the sector map, cached and
// invalidated on mutation: sector images change only on write-command
// completion (and Preload), while the rollback journal serializes the bus
// on every device-touching undo record — so the O(disk size) encode is
// paid per mutation, not per record.
func (d *Disk) sectorBlob() []byte {
	if d.secBlob != nil && !d.secDirty {
		return d.secBlob
	}
	keys := make([]uint32, 0, len(d.sectors))
	for s := range d.sectors {
		keys = append(keys, s)
	}
	// Insertion sort: sector counts are small and this avoids pulling the
	// sort package into the encoding path.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	w := snap.NewWriter(8 + len(d.sectors)*(8+4*d.SectorWords))
	w.U32(uint32(len(keys)))
	for _, s := range keys {
		w.U32(s)
		w.U32Slice(d.sectors[s])
	}
	d.secBlob, d.secDirty = w.Bytes(), false
	return d.secBlob
}

func decodeSectors(blob []byte) (map[uint32][]uint32, error) {
	r := snap.NewReader(blob)
	n := int(r.U32())
	if r.Err() == nil && n > r.Remaining()/8 {
		return nil, snap.Corruptf("sector count %d exceeds blob size", n)
	}
	sectors := make(map[uint32][]uint32, n)
	for i := 0; i < n; i++ {
		s := r.U32()
		words := r.U32Slice()
		if r.Err() != nil {
			return nil, r.Err()
		}
		sectors[s] = words
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return sectors, nil
}

// SaveState implements Device.
func (d *Disk) SaveState(w *snap.Writer) {
	w.U8(diskStateV)
	w.U32(uint32(d.SectorWords))
	w.U64(d.Latency)
	w.Bytes32(d.sectorBlob())
	w.U32(d.sector)
	w.Bool(d.busy)
	w.U64(d.doneAt)
	w.Bool(d.done)
	w.U32Slice(d.buf)
	w.U32(uint32(d.bufPos))
	w.Bool(d.writing)
}

// LoadState implements Device.
func (d *Disk) LoadState(r *snap.Reader) error {
	if err := checkVersion(r, "disk", diskStateV); err != nil {
		return err
	}
	if sw := r.U32(); r.Err() == nil && int(sw) != d.SectorWords {
		return snap.Corruptf("disk geometry %d words/sector, device has %d", sw, d.SectorWords)
	}
	if lat := r.U64(); r.Err() == nil && lat != d.Latency {
		return snap.Corruptf("disk latency %d, device has %d", lat, d.Latency)
	}
	secBlob := r.Bytes32()
	sector := r.U32()
	busy := r.Bool()
	doneAt := r.U64()
	done := r.Bool()
	buf := r.U32Slice()
	bufPos := int(r.U32())
	writing := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if bufPos < 0 || bufPos > len(buf) {
		return snap.Corruptf("disk buffer position %d outside buffer of %d words", bufPos, len(buf))
	}
	sectors, err := decodeSectors(secBlob)
	if err != nil {
		return err
	}
	d.sectors, d.secBlob, d.secDirty = sectors, secBlob, false
	d.sector, d.busy, d.doneAt, d.done = sector, busy, doneAt, done
	d.buf, d.bufPos, d.writing = buf, bufPos, writing
	return nil
}

// ---------------------------------------------------------------------------
// NIC

// SaveState implements Device.
func (n *NIC) SaveState(w *snap.Writer) {
	w.U8(nicStateV)
	writeScript(w, n.arrivals)
	w.U32Slice(n.rx)
	w.U32Slice(n.tx)
}

// LoadState implements Device.
func (n *NIC) LoadState(r *snap.Reader) error {
	if err := checkVersion(r, "nic", nicStateV); err != nil {
		return err
	}
	arrivals := readScript(r)
	rx := r.U32Slice()
	tx := r.U32Slice()
	if err := r.Err(); err != nil {
		return err
	}
	n.arrivals, n.rx, n.tx = arrivals, rx, tx
	return nil
}

// ---------------------------------------------------------------------------
// Bus (controller + devices)

// Snapshot captures the whole bus — controller and every device — as one
// versioned deterministic blob for warm-start persistence. The rollback
// journal does not go through here: it uses Bus.CaptureRollback
// (device.go), which avoids the encode/decode on the FM hot path.
func (b *Bus) Snapshot() []byte {
	w := snap.NewWriter(256)
	b.SaveState(w)
	return w.Bytes()
}

// Restore reinstates a Snapshot blob.
func (b *Bus) Restore(blob []byte) error {
	r := snap.NewReader(blob)
	if err := b.LoadState(r); err != nil {
		return err
	}
	return r.Close()
}

// SaveState writes the bus state: format version, PIC mask, device count,
// then each device's name-tagged state in bus order.
func (b *Bus) SaveState(w *snap.Writer) {
	w.U8(busStateV)
	w.U32(b.PIC.mask)
	w.U32(uint32(len(b.Devices)))
	for _, d := range b.Devices {
		w.String(d.Name())
		d.SaveState(w)
	}
}

// LoadState decodes bus state written by SaveState. The live bus must have
// the same device complement in the same order; a mismatch is an error,
// not a partial restore.
func (b *Bus) LoadState(r *snap.Reader) error {
	if err := checkVersion(r, "bus", busStateV); err != nil {
		return err
	}
	mask := r.U32()
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(b.Devices) {
		return snap.Corruptf("bus has %d devices, blob has %d", len(b.Devices), n)
	}
	for _, d := range b.Devices {
		if name := r.String(); r.Err() == nil && name != d.Name() {
			return snap.Corruptf("device order mismatch: blob %q, bus %q", name, d.Name())
		}
		if err := d.LoadState(r); err != nil {
			return err
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	b.PIC.mask = mask
	return nil
}

// ---------------------------------------------------------------------------
// Memory

// SaveState writes physical memory sparsely: total size plus only the
// non-zero 4 KiB pages (index + raw bytes). A freshly booted 16 MiB target
// touches a few hundred KB, so snapshots stay proportional to the
// workload's footprint, not the configured memory size.
func (m *Memory) SaveState(w *snap.Writer) {
	w.U8(memStateV)
	w.U64(uint64(len(m.data)))
	pages := 0
	countAt := w.Len()
	w.U32(0) // page count back-patched below
	for p := 0; p < len(m.data); p += PageSize {
		page := m.data[p : p+PageSize]
		if pageIsZero(page) {
			continue
		}
		w.U32(uint32(p >> PageShift))
		w.Raw(page)
		pages++
	}
	w.PatchU32(countAt, uint32(pages))
}

// LoadState restores memory written by SaveState. The live memory must
// already have the encoded size (memory geometry is configuration, not
// state); pages absent from the blob are zeroed.
func (m *Memory) LoadState(r *snap.Reader) error {
	if err := checkVersion(r, "memory", memStateV); err != nil {
		return err
	}
	size := r.U64()
	if r.Err() == nil && size != uint64(len(m.data)) {
		return snap.Corruptf("memory size %d, target has %d", size, len(m.data))
	}
	n := int(r.U32())
	if r.Err() == nil && n > r.Remaining()/(4+PageSize) {
		return snap.Corruptf("page count %d exceeds blob size", n)
	}
	type page struct {
		idx uint32
		raw []byte
	}
	pages := make([]page, 0, n)
	maxPage := uint32(len(m.data) >> PageShift)
	for i := 0; i < n; i++ {
		idx := r.U32()
		raw := r.Raw(PageSize)
		if err := r.Err(); err != nil {
			return err
		}
		if idx >= maxPage {
			return snap.Corruptf("page index %d outside %d-page memory", idx, maxPage)
		}
		pages = append(pages, page{idx, raw})
	}
	// Validation done: apply. Zero everything, then lay in the saved pages.
	for i := range m.data {
		m.data[i] = 0
	}
	for _, p := range pages {
		copy(m.data[int(p.idx)<<PageShift:], p.raw)
	}
	return nil
}

func pageIsZero(page []byte) bool {
	for _, b := range page {
		if b != 0 {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// TLB

// SaveState writes the architectural TLB.
func (t *TLB) SaveState(w *snap.Writer) {
	w.U8(tlbStateV)
	w.U32(uint32(t.next))
	for _, e := range t.entries {
		w.U32(e.VPN)
		w.U32(e.PFN)
		w.Bool(e.Valid)
		w.Bool(e.User)
		w.Bool(e.Write)
	}
}

// LoadState restores the architectural TLB.
func (t *TLB) LoadState(r *snap.Reader) error {
	if err := checkVersion(r, "tlb", tlbStateV); err != nil {
		return err
	}
	next := int(r.U32())
	if r.Err() == nil && (next < 0 || next >= NumTLBEntries) {
		return snap.Corruptf("tlb fifo pointer %d", next)
	}
	var entries [NumTLBEntries]TLBEntry
	for i := range entries {
		entries[i] = TLBEntry{
			VPN: r.U32(), PFN: r.U32(),
			Valid: r.Bool(), User: r.Bool(), Write: r.Bool(),
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	t.entries, t.next = entries, next
	return nil
}
