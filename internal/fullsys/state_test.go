package fullsys

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/snap"
)

// populatedBus builds a bus with every device type carrying non-trivial
// state derived from a seeded generator, so the round-trip tests cover a
// different corner of the encoding each iteration.
func populatedBus(rng *rand.Rand) *Bus {
	con := NewConsole(ScriptedInput{At: rng.Uint64() % 1000, Data: []byte("scripted")})
	con.out = append(con.out, []byte("boot banner\n")...)
	con.rx = append(con.rx, byte(rng.Intn(256)), byte(rng.Intn(256)))
	con.irqOnRx = rng.Intn(2) == 0

	tim := NewTimer()
	tim.interval = rng.Uint64() % 50000
	tim.nextFire = tim.interval + rng.Uint64()%1000
	tim.pending = rng.Intn(2) == 0

	disk := NewDisk(16, 500)
	for s := 0; s < rng.Intn(4)+1; s++ {
		words := make([]uint32, 16)
		for i := range words {
			words[i] = rng.Uint32()
		}
		disk.Preload(uint32(rng.Intn(64)), words)
	}
	disk.sector = uint32(rng.Intn(64))
	disk.busy = rng.Intn(2) == 0
	disk.doneAt = rng.Uint64() % 100000
	disk.done = rng.Intn(2) == 0
	disk.buf = make([]uint32, 16)
	disk.bufPos = rng.Intn(17)
	disk.writing = rng.Intn(2) == 0

	nic := NewNIC(ScriptedInput{At: rng.Uint64() % 2000, Data: []byte{1, 2, 3, 4}})
	nic.rx = []uint32{rng.Uint32(), rng.Uint32()}
	nic.tx = []uint32{rng.Uint32()}

	b := NewBus(con, tim, disk, nic)
	b.PIC.mask = rng.Uint32() & 0xFF
	return b
}

// freshBus mirrors populatedBus's device complement with zero state, the
// shape a restore target has.
func freshBus() *Bus {
	return NewBus(NewConsole(), NewTimer(), NewDisk(16, 500), NewNIC())
}

// TestBusSnapshotRoundTrip is the device-encoding property test: for many
// seeded device populations, Snapshot → Restore into a fresh bus →
// re-Snapshot must reproduce the exact bytes (the encoding is canonical),
// and restoring must be rejected cleanly at every truncation point.
func TestBusSnapshotRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := populatedBus(rng)
		blob := src.Snapshot()

		dst := freshBus()
		if err := dst.Restore(blob); err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		again := dst.Snapshot()
		if !bytes.Equal(blob, again) {
			t.Fatalf("seed %d: snapshot not canonical after round trip", seed)
		}
		if dst.PIC.mask != src.PIC.mask {
			t.Fatalf("seed %d: PIC mask %d, want %d", seed, dst.PIC.mask, src.PIC.mask)
		}

		// Every truncation must error, never panic or succeed.
		for cut := 0; cut < len(blob); cut += 7 {
			if err := freshBus().Restore(blob[:cut]); err == nil {
				t.Fatalf("seed %d: restore of %d/%d bytes succeeded", seed, cut, len(blob))
			}
		}
		if err := freshBus().Restore(append(append([]byte(nil), blob...), 0xAA)); err == nil {
			t.Fatalf("seed %d: restore with trailing garbage succeeded", seed)
		}
	}
}

// TestBusRestoreRejectsMismatchedShape pins the configuration-vs-state
// split: blobs only restore onto a bus with the identical device
// complement and geometry.
func TestBusRestoreRejectsMismatchedShape(t *testing.T) {
	blob := freshBus().Snapshot()
	if err := NewBus(NewConsole(), NewTimer(), NewDisk(16, 500)).Restore(blob); err == nil {
		t.Error("restore onto a bus missing a device succeeded")
	}
	if err := NewBus(NewTimer(), NewConsole(), NewDisk(16, 500), NewNIC()).Restore(blob); err == nil {
		t.Error("restore onto a bus with reordered devices succeeded")
	}
	if err := NewBus(NewConsole(), NewTimer(), NewDisk(32, 500), NewNIC()).Restore(blob); err == nil {
		t.Error("restore onto a disk with different geometry succeeded")
	}
	if err := NewBus(NewConsole(), NewTimer(), NewDisk(16, 900), NewNIC()).Restore(blob); err == nil {
		t.Error("restore onto a disk with different latency succeeded")
	}
}

// TestDiskSnapshotAliasing: a snapshot must be an immutable copy. Mutating
// the live disk after capture — through Preload or through the slice
// Sector hands out — must not leak into what the blob restores.
func TestDiskSnapshotAliasing(t *testing.T) {
	src := freshBus()
	var disk *Disk
	for _, d := range src.Devices {
		if dd, ok := d.(*Disk); ok {
			disk = dd
		}
	}
	disk.Preload(3, []uint32{0x11111111, 0x22222222})
	blob := src.Snapshot()

	// Mutate the live disk every way a caller can.
	disk.Preload(3, []uint32{0xBAD0BAD0, 0xBAD1BAD1})
	disk.Preload(5, []uint32{0xFFFFFFFF})
	disk.Sector(3)[0] = 0xDEADBEEF

	dst := freshBus()
	if err := dst.Restore(blob); err != nil {
		t.Fatal(err)
	}
	var got *Disk
	for _, d := range dst.Devices {
		if dd, ok := d.(*Disk); ok {
			got = dd
		}
	}
	sec := got.Sector(3)
	if len(sec) != 2 || sec[0] != 0x11111111 || sec[1] != 0x22222222 {
		t.Errorf("restored sector 3 = %#v, want the pre-mutation image", sec)
	}
	if got.Sector(5) != nil {
		t.Error("restored disk has sector 5, preloaded only after the snapshot")
	}

	// The same isolation must hold for writes arriving the way the kernel
	// actually writes: through the port protocol (sector, write command,
	// streamed data words, completion tick).
	diskWrite := func(d *Disk, now uint64, sector uint32, words []uint32) uint64 {
		d.Tick(now)
		d.Out(PortDiskSector, sector)
		d.Out(PortDiskCmd, 2)
		for _, w := range words {
			now++
			d.Tick(now)
			d.Out(PortDiskData, w)
		}
		now += d.Latency
		d.Tick(now) // completion installs the sector
		d.Out(PortDiskAck, 1)
		return now
	}
	full := make([]uint32, disk.SectorWords)
	for i := range full {
		full[i] = 0xA0000000 + uint32(i)
	}
	now := diskWrite(disk, 10_000, 7, full)

	dst2 := freshBus()
	if err := dst2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	var got2 *Disk
	for _, d := range dst2.Devices {
		if dd, ok := d.(*Disk); ok {
			got2 = dd
		}
	}
	if got2.Sector(7) != nil {
		t.Error("restored disk has sector 7, port-written only after the snapshot")
	}

	// And the converse: a snapshot taken after the port-protocol write
	// restores the modified sector bit-identically — the property the
	// warm-start tier needs for FS workloads that write before a capture.
	blob2 := src.Snapshot()
	diskWrite(disk, now+1, 7, make([]uint32, disk.SectorWords)) // clobber after capture
	dst3 := freshBus()
	if err := dst3.Restore(blob2); err != nil {
		t.Fatal(err)
	}
	var got3 *Disk
	for _, d := range dst3.Devices {
		if dd, ok := d.(*Disk); ok {
			got3 = dd
		}
	}
	sec7 := got3.Sector(7)
	if len(sec7) != disk.SectorWords {
		t.Fatalf("restored sector 7 has %d words, want %d", len(sec7), disk.SectorWords)
	}
	for i, w := range sec7 {
		if w != full[i] {
			t.Fatalf("restored sector 7 word %d = %#x, want %#x", i, w, full[i])
		}
	}
}

// TestDiskWriteCompletesAfterLastWord pins the device-side torn-write
// guard: a write command's completion clock restarts with every streamed
// data word, so while the kernel keeps streaming (each word within the
// device latency of the last) the sector is never installed mid-stream —
// even when the whole transfer takes far longer than the latency, the
// regime where completion-at-command-time used to commit a torn sector.
func TestDiskWriteCompletesAfterLastWord(t *testing.T) {
	d := NewDisk(16, 100)
	d.Tick(0)
	d.Out(PortDiskSector, 4)
	d.Out(PortDiskCmd, 2)
	now := uint64(0)
	for i := 0; i < 16; i++ {
		// 50 units apart: the full 16-word stream takes 750 units, far past
		// the 100-unit latency measured from the command.
		now += 50
		d.Tick(now)
		if i > 0 && d.Sector(4) != nil {
			t.Fatalf("sector 4 installed after %d/16 words", i)
		}
		d.Out(PortDiskData, uint32(i))
	}
	d.Tick(now + 99)
	if d.Sector(4) != nil {
		t.Fatal("sector 4 installed before the post-stream latency elapsed")
	}
	d.Tick(now + 100)
	sec := d.Sector(4)
	if len(sec) != 16 {
		t.Fatalf("sector 4 not installed at completion time (got %d words)", len(sec))
	}
	for i, w := range sec {
		if w != uint32(i) {
			t.Fatalf("sector 4 word %d = %d, want %d", i, w, i)
		}
	}
}

// TestMemoryStateRoundTrip covers the sparse page encoding: scattered
// writes survive the round trip, pages absent from the blob come back
// zero, and geometry mismatches are rejected.
func TestMemoryStateRoundTrip(t *testing.T) {
	m := NewMemory(16 * PageSize)
	m.Write(0, 0xAABBCCDD, 4)                            // first page
	m.Write(isa.Word(5*PageSize+123), 0x55, 1)           // middle page
	m.Write(isa.Word(15*PageSize+PageSize-4), 0xFEFE, 2) // last page

	w := snap.NewWriter(64)
	m.SaveState(w)
	blob := w.Bytes()

	dst := NewMemory(16 * PageSize)
	dst.Write(isa.Word(7*PageSize), 0x1234, 4) // must be zeroed by the restore
	r := snap.NewReader(blob)
	if err := dst.LoadState(r); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := dst.Read(0, 4); got != 0xAABBCCDD {
		t.Errorf("page 0 word = %#x", got)
	}
	if got := dst.Read(isa.Word(5*PageSize+123), 1); got != 0x55 {
		t.Errorf("page 5 byte = %#x", got)
	}
	if got := dst.Read(isa.Word(15*PageSize+PageSize-4), 2); got != 0xFEFE {
		t.Errorf("page 15 halfword = %#x", got)
	}
	if got := dst.Read(isa.Word(7*PageSize), 4); got != 0 {
		t.Errorf("untouched page carries %#x after restore, want 0", got)
	}

	wrong := NewMemory(8 * PageSize)
	if err := wrong.LoadState(snap.NewReader(blob)); err == nil {
		t.Error("restore onto differently sized memory succeeded")
	}
}

// TestTLBStateRoundTrip round-trips the architectural TLB encoding.
func TestTLBStateRoundTrip(t *testing.T) {
	var src TLB
	src.Insert(TLBEntry{VPN: 0x10, PFN: 0x20, Valid: true, User: true, Write: true})
	src.Insert(TLBEntry{VPN: 0x11, PFN: 0x21, Valid: true})
	w := snap.NewWriter(64)
	src.SaveState(w)
	blob := w.Bytes()

	var dst TLB
	r := snap.NewReader(blob)
	if err := dst.LoadState(r); err != nil {
		t.Fatal(err)
	}
	if dst != src {
		t.Errorf("TLB round trip mismatch:\n%+v\nvs\n%+v", dst, src)
	}
}

// FuzzSnapshotDecode drives Bus.Restore with arbitrary byte soup: it must
// reject malformed input with an error — never panic — and any blob it
// accepts must re-encode to the identical bytes (canonical encoding).
func FuzzSnapshotDecode(f *testing.F) {
	valid := populatedBus(rand.New(rand.NewSource(1))).Snapshot()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:1])
	f.Add([]byte{})
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		b := freshBus()
		if err := b.Restore(data); err != nil {
			return
		}
		if again := b.Snapshot(); !bytes.Equal(again, data) {
			t.Fatalf("accepted blob is not canonical: re-encoded %d bytes from %d input", len(again), len(data))
		}
	})
}
