// Package fullsys provides the full-system substrate under the functional
// model: physical memory, the software-filled TLB, the interrupt controller
// and the peripheral devices (console, timer, disk, NIC).
//
// The paper's prototype used QEMU's device models; we build equivalent
// delay-model devices (§3.4: "The functional model simulates the correct
// functionality while the timing model predicts component timing"), small
// enough to snapshot for the functional model's roll-back-across-I/O
// support (§3.2).
package fullsys

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
)

// PageShift/PageSize define the 4 KiB target page.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
)

// Memory is the target's physical memory.
type Memory struct {
	data []byte
}

// NewMemory allocates size bytes of zeroed physical memory.
func NewMemory(size int) *Memory {
	if size <= 0 || size%PageSize != 0 {
		panic(fmt.Sprintf("fullsys: memory size %d not a positive page multiple", size))
	}
	return &Memory{data: make([]byte, size)}
}

// Size returns the physical memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// InRange reports whether an access of n bytes at pa lies inside memory.
func (m *Memory) InRange(pa isa.Word, n int) bool {
	return int(pa) >= 0 && int(pa)+n <= len(m.data) && pa+isa.Word(n) >= pa
}

// Read returns an n-byte little-endian value at pa. n ∈ {1,2,4,8}.
func (m *Memory) Read(pa isa.Word, n int) uint64 {
	switch n {
	case 1:
		return uint64(m.data[pa])
	case 2:
		return uint64(binary.LittleEndian.Uint16(m.data[pa:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.data[pa:]))
	case 8:
		return binary.LittleEndian.Uint64(m.data[pa:])
	}
	panic(fmt.Sprintf("fullsys: bad read size %d", n))
}

// Write stores an n-byte little-endian value at pa.
func (m *Memory) Write(pa isa.Word, v uint64, n int) {
	switch n {
	case 1:
		m.data[pa] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.data[pa:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(m.data[pa:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(m.data[pa:], v)
	default:
		panic(fmt.Sprintf("fullsys: bad write size %d", n))
	}
}

// Bytes returns a read-only view of [pa, pa+n); used by the instruction
// fetch path.
func (m *Memory) Bytes(pa isa.Word, n int) []byte {
	end := int(pa) + n
	if end > len(m.data) {
		end = len(m.data)
	}
	return m.data[pa:end]
}

// Load copies a program image into physical memory.
func (m *Memory) Load(base isa.Word, code []byte) {
	if !m.InRange(base, len(code)) {
		panic(fmt.Sprintf("fullsys: image [%#x,%#x) outside memory", base, int(base)+len(code)))
	}
	copy(m.data[base:], code)
}

// TLBEntry is one software-filled translation: VPN→PFN plus permissions.
type TLBEntry struct {
	VPN   isa.Word
	PFN   isa.Word
	Valid bool
	// User allows user-mode access; Write allows stores.
	User  bool
	Write bool
}

// PFN field encoding used by the tlbwr instruction's second operand:
// pfn<<12 | flags.
const (
	TLBFlagUser  isa.Word = 1 << 0
	TLBFlagWrite isa.Word = 1 << 1
)

// NumTLBEntries is the size of the architectural (functional) TLB.
const NumTLBEntries = 32

// TLB is the architectural TLB, filled by the kernel via tlbwr. It is fully
// associative with FIFO replacement, which keeps the functional semantics
// simple; the timing model has its own TLB timing structures.
type TLB struct {
	entries [NumTLBEntries]TLBEntry
	next    int
}

// Reset invalidates every entry.
func (t *TLB) Reset() { *t = TLB{} }

// Insert writes a translation, replacing FIFO-style.
func (t *TLB) Insert(e TLBEntry) {
	// Replace an existing mapping of the same VPN if present.
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPN == e.VPN {
			t.entries[i] = e
			return
		}
	}
	t.entries[t.next] = e
	t.next = (t.next + 1) % NumTLBEntries
}

// Lookup translates vpn. ok is false on a miss.
func (t *TLB) Lookup(vpn isa.Word) (TLBEntry, bool) {
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPN == vpn {
			return t.entries[i], true
		}
	}
	return TLBEntry{}, false
}

// Snapshot returns a copy of the TLB state for rollback.
func (t *TLB) Snapshot() TLB { return *t }

// Restore reinstates a snapshot.
func (t *TLB) Restore(s TLB) { *t = s }
