package fullsys

import (
	"fmt"

	"repro/internal/snap"
)

// Device is a peripheral reachable through port I/O. Devices are
// deterministic: their "time" is the target's retired-instruction/cycle
// count supplied via Tick, so a simulation replays identically — which the
// functional model's rollback machinery depends on.
type Device interface {
	Name() string
	// Ports returns the port numbers the device decodes.
	Ports() []uint16
	// In reads a port; Out writes one. Both may have side effects (FIFO
	// pops, command triggers).
	In(port uint16) uint32
	Out(port uint16, v uint32)
	// Tick advances device time to absolute time now (monotonic).
	Tick(now uint64)
	// Due reports whether a Tick(now) would change device state. The
	// functional model uses it to snapshot device state for rollback only
	// when something is actually about to happen.
	Due(now uint64) bool
	// IRQ reports a pending interrupt as a vector index (isa.VecIRQBase
	// relative is the caller's concern) or -1. Level-triggered: it stays
	// pending until the device is acknowledged through its ports.
	IRQ() int
	// SaveState appends the device's versioned, deterministic binary state;
	// LoadState decodes it, rejecting truncated or corrupt input with an
	// error. This is the serialization contract warm-start snapshots
	// persist through the content-addressed store; see state.go.
	SaveState(w *snap.Writer)
	LoadState(r *snap.Reader) error
	// CaptureRollback returns a closure that reinstates the device's
	// current state. This is the in-memory capture the functional model's
	// undo journal stores on every device-touching instruction — it
	// structure-shares immutable internals (e.g. installed disk sectors)
	// instead of serializing, because it sits on the FM hot path; the
	// binary SaveState/LoadState form is reserved for persistence.
	CaptureRollback() func()
}

// Port map. The PIC occupies 0x00-0x0F, devices follow.
const (
	PortPICPending uint16 = 0x00 // IN: pending&enabled IRQ bitmask
	PortPICMask    uint16 = 0x01 // IN/OUT: enable mask
	PortPICAck     uint16 = 0x02 // OUT: acknowledge IRQ line (bit index)

	PortConOut    uint16 = 0x10 // OUT: write a character
	PortConStatus uint16 = 0x11 // IN: bit0 tx ready, bit1 rx nonempty
	PortConIn     uint16 = 0x12 // IN: pop input FIFO

	PortTimerInterval uint16 = 0x20 // OUT: period (0 = off); IN: period
	PortTimerCount    uint16 = 0x21 // IN: ticks until next fire
	PortTimerAck      uint16 = 0x22 // OUT: clear pending interrupt

	PortDiskSector uint16 = 0x30 // OUT: target sector
	PortDiskCmd    uint16 = 0x31 // OUT: 1=read, 2=write
	PortDiskData   uint16 = 0x32 // IN/OUT: stream 32-bit words
	PortDiskStatus uint16 = 0x33 // IN: bit0 busy, bit1 done-pending
	PortDiskAck    uint16 = 0x34 // OUT: clear done interrupt

	PortNICStatus uint16 = 0x40 // IN: bit0 rx nonempty, bit1 tx ready
	PortNICRecv   uint16 = 0x41 // IN: pop rx FIFO word
	PortNICSend   uint16 = 0x42 // OUT: push tx word
	PortNICAck    uint16 = 0x43 // OUT: clear rx interrupt
)

// IRQ line numbers (bit indices in the PIC, vector = isa.VecIRQBase + line).
const (
	IRQTimer = 0
	IRQDisk  = 1
	IRQCon   = 2
	IRQNIC   = 3
)

// PIC is the interrupt controller: it aggregates device IRQ lines behind an
// enable mask and presents the highest-priority pending line.
type PIC struct {
	devices []Device
	mask    uint32 // enabled lines
}

// NewPIC builds a controller over devs; each device's IRQ() value is its
// line number.
func NewPIC(devs ...Device) *PIC {
	return &PIC{devices: devs, mask: 0xFFFFFFFF}
}

// Tick advances all devices.
func (p *PIC) Tick(now uint64) {
	for _, d := range p.devices {
		d.Tick(now)
	}
}

// Pending returns the lowest pending & enabled line, or -1.
func (p *PIC) Pending() int {
	best := -1
	for _, d := range p.devices {
		if line := d.IRQ(); line >= 0 && p.mask&(1<<uint(line)) != 0 {
			if best == -1 || line < best {
				best = line
			}
		}
	}
	return best
}

// In implements the PIC's own ports.
func (p *PIC) In(port uint16) uint32 {
	switch port {
	case PortPICPending:
		var bits uint32
		for _, d := range p.devices {
			if line := d.IRQ(); line >= 0 {
				bits |= 1 << uint(line)
			}
		}
		return bits & p.mask
	case PortPICMask:
		return p.mask
	}
	return 0
}

// Out implements the PIC's own ports.
func (p *PIC) Out(port uint16, v uint32) {
	if port == PortPICMask {
		p.mask = v
	}
	// PortPICAck is a no-op at the controller: lines are level-triggered
	// and acknowledged at the device.
}

// Bus routes port I/O to the PIC and devices.
type Bus struct {
	PIC     *PIC
	Devices []Device
	routes  map[uint16]Device
}

// NewBus wires devices and the controller into a port-decoding bus.
func NewBus(devs ...Device) *Bus {
	b := &Bus{PIC: NewPIC(devs...), Devices: devs, routes: make(map[uint16]Device)}
	for _, d := range devs {
		for _, p := range d.Ports() {
			if prev, dup := b.routes[p]; dup {
				panic(fmt.Sprintf("fullsys: port %#x claimed by %s and %s", p, prev.Name(), d.Name()))
			}
			b.routes[p] = d
		}
	}
	return b
}

// In performs a port read at device-time now.
func (b *Bus) In(port uint16, now uint64) uint32 {
	b.PIC.Tick(now)
	if port <= PortPICAck {
		return b.PIC.In(port)
	}
	if d, ok := b.routes[port]; ok {
		return d.In(port)
	}
	return 0xFFFFFFFF // open bus
}

// Out performs a port write at device-time now.
func (b *Bus) Out(port uint16, v uint32, now uint64) {
	b.PIC.Tick(now)
	if port <= PortPICAck {
		b.PIC.Out(port, v)
		return
	}
	if d, ok := b.routes[port]; ok {
		d.Out(port, v)
	}
}

// Tick advances all devices to time now.
func (b *Bus) Tick(now uint64) { b.PIC.Tick(now) }

// Due reports whether any device state would change at time now.
func (b *Bus) Due(now uint64) bool {
	for _, d := range b.Devices {
		if d.Due(now) {
			return true
		}
	}
	return false
}

// Pending returns the pending interrupt line, or -1.
func (b *Bus) Pending() int { return b.PIC.Pending() }

// CaptureRollback returns a closure that reinstates the whole bus —
// controller mask and every device — to its state at the call. This is
// the undo journal's per-record capture: devices structure-share their
// immutable internals, so capture and restore cost O(registers + FIFOs),
// never O(disk image). Persistence goes through Snapshot/Restore instead.
func (b *Bus) CaptureRollback() func() {
	mask := b.PIC.mask
	devs := make([]func(), len(b.Devices))
	for i, d := range b.Devices {
		devs[i] = d.CaptureRollback()
	}
	return func() {
		b.PIC.mask = mask
		for _, f := range devs {
			f()
		}
	}
}

// NoNextEvent is NextDue's "no event scheduled" sentinel.
const NoNextEvent = ^uint64(0)

// eventScheduler is the optional device extension behind Bus.NextDue: a
// device that knows the absolute time of its next state change implements
// it; one that does not (e.g. a test fake) is treated conservatively.
type eventScheduler interface {
	// NextDue returns the earliest absolute device time at or after which a
	// Tick would change device state, or NoNextEvent when nothing is
	// scheduled. Returning now (or less) means "assume something could
	// happen immediately".
	NextDue(now uint64) uint64
}

// NextDue returns the earliest absolute time at which any device's state
// would change, or NoNextEvent when nothing is scheduled anywhere. The
// functional model's superblock executor uses it to prove that a whole
// straight-line block can run without a device event (and therefore
// without per-instruction Bus.Tick calls) falling inside it. A device that
// does not implement eventScheduler contributes now — conservatively
// disabling any event-free window.
func (b *Bus) NextDue(now uint64) uint64 {
	min := uint64(NoNextEvent)
	for _, d := range b.Devices {
		t := now
		if s, ok := d.(eventScheduler); ok {
			t = s.NextDue(now)
		}
		if t < min {
			min = t
		}
	}
	return min
}
