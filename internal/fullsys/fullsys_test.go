package fullsys

import (
	"testing"
	"testing/quick"

	"repro/internal/snap"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory(1 << 16)
	m.Write(0x100, 0x11223344, 4)
	if v := m.Read(0x100, 4); v != 0x11223344 {
		t.Errorf("read32 = %#x", v)
	}
	if v := m.Read(0x100, 1); v != 0x44 {
		t.Errorf("little-endian byte = %#x", v)
	}
	if v := m.Read(0x102, 2); v != 0x1122 {
		t.Errorf("read16 = %#x", v)
	}
	m.Write(0x200, 0x0102030405060708, 8)
	if v := m.Read(0x200, 8); v != 0x0102030405060708 {
		t.Errorf("read64 = %#x", v)
	}
}

func TestMemoryRoundTripProperty(t *testing.T) {
	m := NewMemory(1 << 16)
	f := func(addr uint16, v uint32) bool {
		a := uint32(addr)
		m.Write(a, uint64(v), 4)
		return m.Read(a, 4) == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryInRange(t *testing.T) {
	m := NewMemory(1 << 12)
	if !m.InRange(0, 4096) {
		t.Error("full range rejected")
	}
	if m.InRange(4093, 4) {
		t.Error("overrun accepted")
	}
	if m.InRange(0xFFFFFFFC, 8) {
		t.Error("wraparound accepted")
	}
}

func TestMemoryLoad(t *testing.T) {
	m := NewMemory(1 << 12)
	m.Load(0x10, []byte{1, 2, 3})
	if m.Read(0x10, 1) != 1 || m.Read(0x12, 1) != 3 {
		t.Error("load failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range load did not panic")
		}
	}()
	m.Load(0xFFF, []byte{1, 2})
}

func TestTLBInsertLookupReplace(t *testing.T) {
	var tlb TLB
	tlb.Insert(TLBEntry{VPN: 5, PFN: 9, Valid: true, User: true})
	e, ok := tlb.Lookup(5)
	if !ok || e.PFN != 9 {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	if _, ok := tlb.Lookup(6); ok {
		t.Error("phantom hit")
	}
	// Same-VPN insert replaces in place.
	tlb.Insert(TLBEntry{VPN: 5, PFN: 12, Valid: true, Write: true})
	e, _ = tlb.Lookup(5)
	if e.PFN != 12 || !e.Write {
		t.Errorf("replacement = %+v", e)
	}
}

func TestTLBFIFOEviction(t *testing.T) {
	var tlb TLB
	for i := 0; i < NumTLBEntries+1; i++ {
		tlb.Insert(TLBEntry{VPN: uint32(i), PFN: uint32(i), Valid: true})
	}
	if _, ok := tlb.Lookup(0); ok {
		t.Error("oldest entry survived a full wrap")
	}
	if _, ok := tlb.Lookup(uint32(NumTLBEntries)); !ok {
		t.Error("newest entry missing")
	}
}

func TestTLBSnapshotRestore(t *testing.T) {
	var tlb TLB
	tlb.Insert(TLBEntry{VPN: 1, PFN: 2, Valid: true})
	snap := tlb.Snapshot()
	tlb.Insert(TLBEntry{VPN: 3, PFN: 4, Valid: true})
	tlb.Reset()
	tlb.Restore(snap)
	if _, ok := tlb.Lookup(1); !ok {
		t.Error("restored entry missing")
	}
	if _, ok := tlb.Lookup(3); ok {
		t.Error("post-snapshot entry survived restore")
	}
}

func TestConsole(t *testing.T) {
	c := NewConsole(ScriptedInput{At: 10, Data: []byte("ab")})
	c.Tick(5)
	if c.IRQ() >= 0 {
		t.Error("premature console IRQ")
	}
	if s := c.In(PortConStatus); s&2 != 0 {
		t.Error("rx ready before arrival")
	}
	c.Tick(10)
	if c.IRQ() != IRQCon {
		t.Error("no IRQ after arrival")
	}
	if ch := c.In(PortConIn); ch != 'a' {
		t.Errorf("read %c", ch)
	}
	if ch := c.In(PortConIn); ch != 'b' {
		t.Errorf("read %c", ch)
	}
	if c.IRQ() >= 0 {
		t.Error("IRQ after draining")
	}
	c.Out(PortConOut, 'x')
	if string(c.Output()) != "x" {
		t.Errorf("output %q", c.Output())
	}
}

func TestTimerPeriodic(t *testing.T) {
	tm := NewTimer()
	tm.Tick(100)
	tm.Out(PortTimerInterval, 50)
	tm.Tick(149)
	if tm.IRQ() >= 0 {
		t.Error("fired early")
	}
	tm.Tick(150)
	if tm.IRQ() != IRQTimer {
		t.Error("did not fire")
	}
	tm.Out(PortTimerAck, 1)
	if tm.IRQ() >= 0 {
		t.Error("ack ignored")
	}
	tm.Tick(200)
	if tm.IRQ() != IRQTimer {
		t.Error("did not refire")
	}
	// Catch-up across a long idle gap fires once (pending is level).
	tm.Out(PortTimerAck, 1)
	tm.Tick(1000)
	if tm.IRQ() != IRQTimer {
		t.Error("no fire after gap")
	}
	if got := tm.In(PortTimerInterval); got != 50 {
		t.Errorf("interval readback = %d", got)
	}
}

func TestDiskReadWrite(t *testing.T) {
	d := NewDisk(4, 100)
	d.Preload(7, []uint32{10, 20, 30, 40})
	d.Tick(0)
	d.Out(PortDiskSector, 7)
	d.Out(PortDiskCmd, 1) // read
	if d.In(PortDiskStatus)&1 == 0 {
		t.Error("not busy after command")
	}
	d.Tick(99)
	if d.IRQ() >= 0 {
		t.Error("completed early")
	}
	d.Tick(100)
	if d.IRQ() != IRQDisk {
		t.Error("no completion IRQ")
	}
	for i, want := range []uint32{10, 20, 30, 40} {
		if v := d.In(PortDiskData); v != want {
			t.Errorf("word %d = %d, want %d", i, v, want)
		}
	}
	d.Out(PortDiskAck, 1)
	if d.IRQ() >= 0 {
		t.Error("ack ignored")
	}

	// Write path.
	d.Out(PortDiskSector, 9)
	d.Out(PortDiskCmd, 2)
	for _, w := range []uint32{5, 6, 7, 8} {
		d.Out(PortDiskData, w)
	}
	d.Tick(250)
	sec := d.Sector(9)
	if len(sec) != 4 || sec[0] != 5 || sec[3] != 8 {
		t.Errorf("written sector = %v", sec)
	}
}

func TestNIC(t *testing.T) {
	n := NewNIC(ScriptedInput{At: 20, Data: []byte{1, 0, 0, 0, 2, 0, 0, 0}})
	n.Tick(19)
	if n.IRQ() >= 0 {
		t.Error("early packet")
	}
	n.Tick(20)
	if n.IRQ() != IRQNIC {
		t.Error("no rx IRQ")
	}
	if v := n.In(PortNICRecv); v != 1 {
		t.Errorf("rx word = %d", v)
	}
	n.Out(PortNICSend, 99)
	if len(n.Sent()) != 1 || n.Sent()[0] != 99 {
		t.Errorf("tx = %v", n.Sent())
	}
}

func TestBusRoutingAndPIC(t *testing.T) {
	con := NewConsole()
	tm := NewTimer()
	b := NewBus(con, tm)
	b.Out(PortConOut, 'z', 0)
	if string(con.Output()) != "z" {
		t.Error("bus did not route console write")
	}
	b.Out(PortTimerInterval, 10, 0)
	b.Tick(10)
	if b.Pending() != IRQTimer {
		t.Errorf("pending = %d, want timer", b.Pending())
	}
	if bits := b.In(PortPICPending, 10); bits&(1<<IRQTimer) == 0 {
		t.Error("PIC pending bitmask missing timer")
	}
	// Mask the timer line.
	b.Out(PortPICMask, ^uint32(1<<IRQTimer), 10)
	if b.Pending() != -1 {
		t.Error("masked line still pending")
	}
	if v := b.In(0x999, 10); v != 0xFFFFFFFF {
		t.Errorf("open bus read = %#x", v)
	}
}

func TestBusSnapshotRestore(t *testing.T) {
	con := NewConsole(ScriptedInput{At: 5, Data: []byte("k")})
	tm := NewTimer()
	b := NewBus(con, tm)
	b.Out(PortTimerInterval, 3, 0)
	blob := b.Snapshot()
	b.Tick(10) // timer fires, console input arrives
	b.Out(PortConOut, 'q', 10)
	if b.Pending() < 0 {
		t.Fatal("nothing pending before restore")
	}
	if err := b.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != -1 {
		t.Error("pending IRQ survived restore")
	}
	if len(con.Output()) != 0 {
		t.Error("console output survived restore")
	}
	// Deterministic redo: ticking again re-fires identically.
	b.Tick(10)
	if b.Pending() < 0 {
		t.Error("redo after restore did not re-fire")
	}
}

func TestBusDuplicatePortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate port registration did not panic")
		}
	}()
	NewBus(NewConsole(), NewConsole())
}

func TestDueMatchesTick(t *testing.T) {
	// Property: Due(now) true iff Tick(now) changes observable state, for
	// the timer.
	tm := NewTimer()
	tm.Out(PortTimerInterval, 7)
	state := func() string {
		var w snap.Writer
		tm.SaveState(&w)
		return string(w.Bytes())
	}
	for now := uint64(1); now < 40; now++ {
		due := tm.Due(now)
		before := state()
		tm.Tick(now)
		after := state()
		changed := before != after
		if due != changed {
			t.Fatalf("now=%d: Due=%v changed=%v", now, due, changed)
		}
		if tm.IRQ() >= 0 {
			tm.Out(PortTimerAck, 1)
		}
	}
}
