package fullsys

// Concrete device models. Each is deterministic in target time and small
// enough that its whole state is capturable two ways: CaptureRollback
// (structure-sharing closures for the functional model's per-instruction
// undo journal) and SaveState/LoadState (state.go; the versioned binary
// form warm-start snapshots persist).

// Console is a character console: an always-ready output port and an input
// FIFO pre-scripted at construction (a deterministic stand-in for keyboard
// input). Input arrival times are in target time units.
type Console struct {
	out     []byte
	script  []ScriptedInput
	rx      []byte
	now     uint64
	irqOnRx bool
}

// ScriptedInput delivers Data to the console input FIFO at time At.
type ScriptedInput struct {
	At   uint64
	Data []byte
}

// NewConsole creates a console; script entries must be sorted by At.
func NewConsole(script ...ScriptedInput) *Console {
	return &Console{script: script}
}

// Output returns everything written to the console so far.
func (c *Console) Output() []byte { return c.out }

// Name implements Device.
func (c *Console) Name() string { return "console" }

// Ports implements Device.
func (c *Console) Ports() []uint16 { return []uint16{PortConOut, PortConStatus, PortConIn} }

// Tick implements Device.
func (c *Console) Tick(now uint64) {
	c.now = now
	for len(c.script) > 0 && c.script[0].At <= now {
		c.rx = append(c.rx, c.script[0].Data...)
		c.script = c.script[1:]
		c.irqOnRx = true
	}
}

// Due implements Device.
func (c *Console) Due(now uint64) bool {
	return len(c.script) > 0 && c.script[0].At <= now
}

// NextDue implements the Bus.NextDue scheduler extension: the next scripted
// input arrival (the script is sorted by At).
func (c *Console) NextDue(uint64) uint64 {
	if len(c.script) == 0 {
		return NoNextEvent
	}
	return c.script[0].At
}

// In implements Device.
func (c *Console) In(port uint16) uint32 {
	switch port {
	case PortConStatus:
		s := uint32(1) // tx always ready
		if len(c.rx) > 0 {
			s |= 2
		}
		return s
	case PortConIn:
		if len(c.rx) == 0 {
			return 0
		}
		ch := c.rx[0]
		c.rx = c.rx[1:]
		if len(c.rx) == 0 {
			c.irqOnRx = false
		}
		return uint32(ch)
	}
	return 0
}

// Out implements Device.
func (c *Console) Out(port uint16, v uint32) {
	if port == PortConOut {
		c.out = append(c.out, byte(v))
	}
}

// IRQ implements Device.
func (c *Console) IRQ() int {
	if c.irqOnRx {
		return IRQCon
	}
	return -1
}

// CaptureRollback implements Device. Output is append-only, so the capture
// records only its length and restore truncates.
func (c *Console) CaptureRollback() func() {
	outLen := len(c.out)
	script := append([]ScriptedInput(nil), c.script...)
	rx := append([]byte(nil), c.rx...)
	irqOnRx := c.irqOnRx
	return func() {
		c.out = c.out[:outLen]
		c.script, c.rx, c.irqOnRx = script, rx, irqOnRx
	}
}

// Timer raises IRQTimer every interval target time units once programmed.
type Timer struct {
	interval uint64
	nextFire uint64
	pending  bool
	now      uint64
}

// NewTimer creates an unprogrammed timer.
func NewTimer() *Timer { return &Timer{} }

// Name implements Device.
func (t *Timer) Name() string { return "timer" }

// Ports implements Device.
func (t *Timer) Ports() []uint16 {
	return []uint16{PortTimerInterval, PortTimerCount, PortTimerAck}
}

// Tick implements Device.
func (t *Timer) Tick(now uint64) {
	t.now = now
	for t.interval != 0 && now >= t.nextFire {
		t.pending = true
		t.nextFire += t.interval
	}
}

// Due implements Device.
func (t *Timer) Due(now uint64) bool {
	return t.interval != 0 && now >= t.nextFire
}

// NextDue implements the Bus.NextDue scheduler extension: the next periodic
// fire, or nothing while unprogrammed.
func (t *Timer) NextDue(uint64) uint64 {
	if t.interval == 0 {
		return NoNextEvent
	}
	return t.nextFire
}

// In implements Device.
func (t *Timer) In(port uint16) uint32 {
	switch port {
	case PortTimerInterval:
		return uint32(t.interval)
	case PortTimerCount:
		if t.interval == 0 || t.nextFire <= t.now {
			return 0
		}
		return uint32(t.nextFire - t.now)
	}
	return 0
}

// Out implements Device.
func (t *Timer) Out(port uint16, v uint32) {
	switch port {
	case PortTimerInterval:
		t.interval = uint64(v)
		t.nextFire = t.now + t.interval
		if v == 0 {
			t.pending = false
		}
	case PortTimerAck:
		t.pending = false
	}
}

// IRQ implements Device.
func (t *Timer) IRQ() int {
	if t.pending {
		return IRQTimer
	}
	return -1
}

// CaptureRollback implements Device.
func (t *Timer) CaptureRollback() func() {
	interval, nextFire, pending := t.interval, t.nextFire, t.pending
	return func() {
		t.interval, t.nextFire, t.pending = interval, nextFire, pending
	}
}

// Disk models a sectored block device with a fixed access latency: a
// command issued at time T completes (raising IRQDisk) at T+Latency. This
// is the "simple delay model" class of peripheral timing the prototype
// used; the timing model can refine it (§3.4).
type Disk struct {
	SectorWords int
	Latency     uint64

	sectors map[uint32][]uint32
	now     uint64

	// secBlob caches the canonical sector-map encoding; secDirty marks it
	// stale after a sector mutation. See sectorBlob in state.go.
	secBlob  []byte
	secDirty bool

	sector  uint32
	busy    bool
	doneAt  uint64
	done    bool
	buf     []uint32
	bufPos  int
	writing bool
}

// NewDisk creates a disk whose sectors hold sectorWords 32-bit words and
// whose accesses take latency target time units.
func NewDisk(sectorWords int, latency uint64) *Disk {
	return &Disk{SectorWords: sectorWords, Latency: latency, sectors: make(map[uint32][]uint32)}
}

// Preload fills a sector image before boot (e.g. the "compressed kernel").
func (d *Disk) Preload(sector uint32, words []uint32) {
	d.sectors[sector] = append([]uint32(nil), words...)
	d.secDirty = true
}

// Sector returns a copy of a sector's current contents.
func (d *Disk) Sector(sector uint32) []uint32 {
	return append([]uint32(nil), d.sectors[sector]...)
}

// Name implements Device.
func (d *Disk) Name() string { return "disk" }

// Ports implements Device.
func (d *Disk) Ports() []uint16 {
	return []uint16{PortDiskSector, PortDiskCmd, PortDiskData, PortDiskStatus, PortDiskAck}
}

// Tick implements Device.
func (d *Disk) Tick(now uint64) {
	d.now = now
	if d.busy && now >= d.doneAt {
		d.busy = false
		d.done = true
		if d.writing {
			sec := make([]uint32, d.SectorWords)
			copy(sec, d.buf)
			d.sectors[d.sector] = sec
			d.secDirty = true
		}
	}
}

// Due implements Device.
func (d *Disk) Due(now uint64) bool {
	return d.busy && now >= d.doneAt
}

// NextDue implements the Bus.NextDue scheduler extension: the completion of
// the in-flight command, or nothing while idle.
func (d *Disk) NextDue(uint64) uint64 {
	if !d.busy {
		return NoNextEvent
	}
	return d.doneAt
}

// In implements Device.
func (d *Disk) In(port uint16) uint32 {
	switch port {
	case PortDiskStatus:
		var s uint32
		if d.busy {
			s |= 1
		}
		if d.done {
			s |= 2
		}
		return s
	case PortDiskData:
		if d.busy || d.bufPos >= len(d.buf) {
			return 0
		}
		v := d.buf[d.bufPos]
		d.bufPos++
		return v
	}
	return 0
}

// Out implements Device.
func (d *Disk) Out(port uint16, v uint32) {
	switch port {
	case PortDiskSector:
		d.sector = v
	case PortDiskCmd:
		switch v {
		case 1: // read
			d.buf = make([]uint32, d.SectorWords)
			copy(d.buf, d.sectors[d.sector])
			d.bufPos = 0
			d.writing = false
			d.busy = true
			d.doneAt = d.now + d.Latency
		case 2: // write
			d.buf = make([]uint32, 0, d.SectorWords)
			d.bufPos = 0
			d.writing = true
			d.busy = true
			d.doneAt = d.now + d.Latency
		}
	case PortDiskData:
		if d.writing && len(d.buf) < d.SectorWords {
			d.buf = append(d.buf, v)
			// The write completes Latency after the *last* streamed word,
			// not after the command: PIO streaming a full sector takes
			// longer than the device latency, and completing mid-stream
			// would commit a torn sector to the medium.
			d.doneAt = d.now + d.Latency
		}
	case PortDiskAck:
		d.done = false
	}
}

// IRQ implements Device.
func (d *Disk) IRQ() int {
	if d.done {
		return IRQDisk
	}
	return -1
}

// copySectors shallow-copies the sector map. Installed sector slices are
// never mutated in place (Tick and Preload always install fresh slices), so
// sharing them between the live map and a rollback capture is safe.
func copySectors(m map[uint32][]uint32) map[uint32][]uint32 {
	out := make(map[uint32][]uint32, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// CaptureRollback implements Device. The sector map is shallow-copied —
// O(sectors), not O(disk words) — and restore copies again so a checkpoint
// capture survives being restored more than once.
func (d *Disk) CaptureRollback() func() {
	sectors := copySectors(d.sectors)
	secBlob, secDirty := d.secBlob, d.secDirty
	sector, busy, doneAt, done := d.sector, d.busy, d.doneAt, d.done
	buf := append([]uint32(nil), d.buf...)
	bufPos, writing := d.bufPos, d.writing
	return func() {
		d.sectors = copySectors(sectors)
		d.secBlob, d.secDirty = secBlob, secDirty
		d.sector, d.busy, d.doneAt, d.done = sector, busy, doneAt, done
		d.buf = append([]uint32(nil), buf...)
		d.bufPos, d.writing = bufPos, writing
	}
}

// NIC is a network interface with scripted packet arrivals and a tx FIFO.
// Arrivals model external events ("the number of external events ...
// increase over time", §1) without a real network.
type NIC struct {
	arrivals []ScriptedInput // Data interpreted as 32-bit LE words
	rx       []uint32
	tx       []uint32
	now      uint64
}

// NewNIC creates a NIC with scripted arrivals (sorted by At).
func NewNIC(arrivals ...ScriptedInput) *NIC { return &NIC{arrivals: arrivals} }

// Sent returns all words written to the tx FIFO.
func (n *NIC) Sent() []uint32 { return n.tx }

// Name implements Device.
func (n *NIC) Name() string { return "nic" }

// Ports implements Device.
func (n *NIC) Ports() []uint16 {
	return []uint16{PortNICStatus, PortNICRecv, PortNICSend, PortNICAck}
}

// Tick implements Device.
func (n *NIC) Tick(now uint64) {
	n.now = now
	for len(n.arrivals) > 0 && n.arrivals[0].At <= now {
		d := n.arrivals[0].Data
		for i := 0; i+3 < len(d); i += 4 {
			n.rx = append(n.rx, uint32(d[i])|uint32(d[i+1])<<8|uint32(d[i+2])<<16|uint32(d[i+3])<<24)
		}
		n.arrivals = n.arrivals[1:]
	}
}

// Due implements Device.
func (n *NIC) Due(now uint64) bool {
	return len(n.arrivals) > 0 && n.arrivals[0].At <= now
}

// NextDue implements the Bus.NextDue scheduler extension: the next scripted
// packet arrival (arrivals are sorted by At).
func (n *NIC) NextDue(uint64) uint64 {
	if len(n.arrivals) == 0 {
		return NoNextEvent
	}
	return n.arrivals[0].At
}

// In implements Device.
func (n *NIC) In(port uint16) uint32 {
	switch port {
	case PortNICStatus:
		var s uint32
		if len(n.rx) > 0 {
			s |= 1
		}
		s |= 2 // tx always ready
		return s
	case PortNICRecv:
		if len(n.rx) == 0 {
			return 0
		}
		v := n.rx[0]
		n.rx = n.rx[1:]
		return v
	}
	return 0
}

// Out implements Device.
func (n *NIC) Out(port uint16, v uint32) {
	if port == PortNICSend {
		n.tx = append(n.tx, v)
	}
}

// IRQ implements Device.
func (n *NIC) IRQ() int {
	if len(n.rx) > 0 {
		return IRQNIC
	}
	return -1
}

// CaptureRollback implements Device. The tx FIFO is append-only, so the
// capture records only its length and restore truncates.
func (n *NIC) CaptureRollback() func() {
	arrivals := append([]ScriptedInput(nil), n.arrivals...)
	rx := append([]uint32(nil), n.rx...)
	txLen := len(n.tx)
	return func() {
		n.arrivals, n.rx = arrivals, rx
		n.tx = n.tx[:txLen]
	}
}
