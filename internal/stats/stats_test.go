package stats

import (
	"strings"
	"testing"

	"repro/internal/fm"
	"repro/internal/isa"
	"repro/internal/tm"
	"repro/internal/trace"
)

func recordTrace(t *testing.T, src string) []trace.Entry {
	t.Helper()
	m := fm.New(fm.Config{MemBytes: 1 << 20, DisableInterrupts: true})
	m.LoadProgram(isa.MustAssemble(src, 0x1000))
	var out []trace.Entry
	for {
		e, ok := m.Step()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}

const src = `
	movi r0, 3000
	movi r5, 123
loop:
	movi r10, 1103515245
	mul  r5, r10
	addi r5, 12345
	mov  r6, r5
	shri r6, 16
	andi r6, 1
	cmpi r6, 0
	jz   skip
	addi r1, 1
skip:	dec r0
	jnz  loop
	halt
`

func TestSamplerWindows(t *testing.T) {
	entries := recordTrace(t, src)
	model, err := tm.New(tm.DefaultConfig(), &tm.SliceSource{Entries: entries}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(model, 500) // every 500 basic blocks
	for !model.Done() {
		model.Step()
		s.Poll()
	}
	if len(s.Samples) < 5 {
		t.Fatalf("only %d samples", len(s.Samples))
	}
	for i, x := range s.Samples {
		if x.ICacheHitRate < 0 || x.ICacheHitRate > 100 ||
			x.BPAccuracy < 0 || x.BPAccuracy > 100 ||
			x.DrainPct < 0 || x.DrainPct > 100 {
			t.Errorf("sample %d out of range: %+v", i, x)
		}
		if i > 0 && x.BasicBlocks <= s.Samples[i-1].BasicBlocks {
			t.Errorf("sample %d not monotone in basic blocks", i)
		}
	}
	// The random branch keeps drains nonzero and the iCache hot.
	last := s.Samples[len(s.Samples)-1]
	if last.DrainPct == 0 {
		t.Error("no drain cycles sampled despite random branches")
	}
	if last.ICacheHitRate < 95 {
		t.Errorf("tight loop iCache hit rate %.2f", last.ICacheHitRate)
	}
	if !strings.Contains(s.Render(), "drain%") {
		t.Error("render missing header")
	}
}

func TestQueryActiveFunctionalUnits(t *testing.T) {
	entries := recordTrace(t, src)
	model, err := tm.New(tm.DefaultConfig(), &tm.SliceSource{Entries: entries}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{Below: 1} // "when does the number of active FUs drop below 1?"
	model.Probe = q.Probe()
	model.Run(1 << 62)
	if !q.Hit {
		t.Fatal("query never fired; pipelines always have bubbles somewhere")
	}
	if q.Count == 0 || q.FirstCycle > model.Stats.Cycles {
		t.Errorf("query results implausible: %+v", q)
	}
}

func TestTreeNetworkBeatsFlatWiring(t *testing.T) {
	n := TreeNetwork{Modules: 24, Width: 32}
	if n.TreeWires() >= n.FlatWires() {
		t.Errorf("tree wiring (%d) not below flat (%d)", n.TreeWires(), n.FlatWires())
	}
	if n.DrainCycles() != 24 {
		t.Errorf("drain cycles = %d", n.DrainCycles())
	}
	if (TreeNetwork{}).TreeWires() != 0 {
		t.Error("empty network should need no wires")
	}
}

func TestTriggerCapturesWindow(t *testing.T) {
	entries := recordTrace(t, src)
	model, err := tm.New(tm.DefaultConfig(), &tm.SliceSource{Entries: entries}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// §4.6-style criterion: start when the machine goes idle for a cycle,
	// stop 200 cycles later.
	trig := &Trigger{
		Start: func(o Observation) bool { return o.Issued == 0 && o.Cycle > 50 },
		Stop:  func(o Observation) bool { return o.Cycle > 250 },
		Depth: 64,
	}
	model.Probe = func(cycle uint64, issued int) {
		trig.Observe(Observation{Cycle: cycle, Issued: issued})
	}
	next := uint64(0)
	for !model.Done() {
		model.Step()
		// Feed commits (committed INs advance monotonically).
		for next < model.Stats.Instructions {
			trig.Capture(entries[next])
			next++
		}
	}
	if !trig.Fired() {
		t.Fatal("trigger never fired")
	}
	if trig.Active() {
		t.Error("trigger never stopped")
	}
	if len(trig.Log) == 0 {
		t.Fatal("no entries captured")
	}
	if len(trig.Log) > 64 {
		t.Errorf("capture exceeded depth: %d", len(trig.Log))
	}
	if !strings.Contains(trig.Dump(), "trigger window") {
		t.Error("dump missing header")
	}
	// Captured INs must be contiguous committed-order instructions.
	for i := 1; i < len(trig.Log); i++ {
		if trig.Log[i].IN != trig.Log[i-1].IN+1 {
			t.Fatalf("capture not contiguous at %d", i)
		}
	}
}
