package stats

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Trigger implements the §4.6 plan: "logging/tracing statistics support
// with triggering (start, stop and dump logs/traces based on
// user-specified criteria)". A Trigger watches per-cycle observations,
// starts capturing committed-instruction events when the start predicate
// fires, and stops on the stop predicate — all "hardware-side", costing
// the simulation nothing.
type Trigger struct {
	// Start fires capture; Stop ends it. Either may be nil (always
	// false). Predicates see the per-cycle observation.
	Start func(Observation) bool
	Stop  func(Observation) bool
	// Depth bounds the capture buffer (dump-on-full), like a logic
	// analyzer's sample memory. 0 means 4096.
	Depth int

	active    bool
	fired     bool
	StartedAt uint64
	StoppedAt uint64
	Log       []trace.Entry
	Dropped   uint64
}

// Observation is what trigger predicates see each cycle.
type Observation struct {
	Cycle   uint64
	Issued  int // µops issued this cycle
	Drained bool
}

// Observe feeds one cycle's state; call from a tm Probe.
func (t *Trigger) Observe(o Observation) {
	if t.Depth == 0 {
		t.Depth = 4096
	}
	if !t.active && !t.fired && t.Start != nil && t.Start(o) {
		t.active = true
		t.fired = true
		t.StartedAt = o.Cycle
	}
	if t.active && t.Stop != nil && t.Stop(o) {
		t.active = false
		t.StoppedAt = o.Cycle
	}
}

// Capture records a committed instruction while the trigger is active; call
// from the commit stream.
func (t *Trigger) Capture(e trace.Entry) {
	if !t.active {
		return
	}
	if len(t.Log) >= t.Depth {
		t.Dropped++
		return
	}
	t.Log = append(t.Log, e)
}

// Active reports whether capture is running.
func (t *Trigger) Active() bool { return t.active }

// Fired reports whether the start condition ever matched.
func (t *Trigger) Fired() bool { return t.fired }

// Dump renders the captured window.
func (t *Trigger) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trigger window: cycles %d..%d, %d entries (%d dropped)\n",
		t.StartedAt, t.StoppedAt, len(t.Log), t.Dropped)
	for _, e := range t.Log {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}
