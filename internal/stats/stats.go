// Package stats implements FAST's statistics gathering (§3, §4.6, Figure
// 6): windowed counter sampling ("The statistics are gathered every 100K
// basic blocks"), continuous run-time queries that dedicated hardware could
// evaluate at full speed ("when does the number of active functional units
// drop below 1?"), and a model of the tree-based statistics network that
// replaces the prototype's routing-hungry per-Module taps (§4.7).
package stats

import (
	"fmt"
	"strings"

	"repro/internal/tm"
)

// Sample is one Figure 6 data point: windowed metrics over the last
// sampling interval.
type Sample struct {
	BasicBlocks   uint64 // cumulative BBs at the end of the window
	Instructions  uint64
	Cycles        uint64
	ICacheHitRate float64
	BPAccuracy    float64
	DrainPct      float64 // pipe-drain cycles due to mispredicts, % of window
	IPC           float64
}

// snapshot holds the cumulative counters a window is diffed against.
type snapshot struct {
	cycles, inst, drains  uint64
	bpBranches, bpCorrect uint64
	icAccesses, icHits    uint64
}

func snap(model *tm.TM) snapshot {
	ic := model.IL1.Stats()
	return snapshot{
		cycles:     model.Stats.Cycles,
		inst:       model.Stats.Instructions,
		drains:     model.Stats.DrainCycles,
		bpBranches: model.BPStats.Branches,
		bpCorrect:  model.BPStats.Correct,
		icAccesses: ic.Accesses,
		icHits:     ic.Hits,
	}
}

// Sampler produces a Sample every Interval committed basic blocks.
type Sampler struct {
	Interval uint64 // basic blocks per window (Figure 6 uses 100_000)

	model   *tm.TM
	lastBB  uint64
	prev    snapshot
	Samples []Sample
}

// NewSampler attaches a sampler to a timing model.
func NewSampler(model *tm.TM, interval uint64) *Sampler {
	if interval == 0 {
		interval = 100_000
	}
	return &Sampler{Interval: interval, model: model, prev: snap(model)}
}

// Poll takes a sample if a full window of basic blocks has committed. Call
// it as often as convenient (e.g. every cycle or every thousand cycles);
// dedicated statistics hardware costs nothing, and polling here only reads
// counters.
func (s *Sampler) Poll() {
	bb := s.model.Stats.BasicBlocks
	if bb-s.lastBB < s.Interval {
		return
	}
	s.lastBB = bb
	cur := snap(s.model)
	d := func(a, b uint64) uint64 { return a - b }
	win := Sample{
		BasicBlocks:  bb,
		Instructions: cur.inst,
		Cycles:       cur.cycles,
	}
	if dc := d(cur.cycles, s.prev.cycles); dc > 0 {
		win.DrainPct = 100 * float64(d(cur.drains, s.prev.drains)) / float64(dc)
		win.IPC = float64(d(cur.inst, s.prev.inst)) / float64(dc)
	}
	if db := d(cur.bpBranches, s.prev.bpBranches); db > 0 {
		win.BPAccuracy = 100 * float64(d(cur.bpCorrect, s.prev.bpCorrect)) / float64(db)
	}
	if da := d(cur.icAccesses, s.prev.icAccesses); da > 0 {
		win.ICacheHitRate = 100 * float64(d(cur.icHits, s.prev.icHits)) / float64(da)
	}
	s.prev = cur
	s.Samples = append(s.Samples, win)
}

// Render prints the Figure 6 series as aligned text columns.
func (s *Sampler) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%14s %10s %10s %10s %8s\n",
		"basic-blocks", "iL1-hit%", "BP-acc%", "drain%", "IPC")
	for _, x := range s.Samples {
		fmt.Fprintf(&b, "%14d %10.2f %10.2f %10.2f %8.3f\n",
			x.BasicBlocks, x.ICacheHitRate, x.BPAccuracy, x.DrainPct, x.IPC)
	}
	return b.String()
}

// Query is a continuous run-time query over per-cycle observations — the
// §3 example is "when does the number of active functional units drop
// below 1?". In hardware it runs at full speed; here it is a Probe
// callback.
type Query struct {
	// Below is the threshold on issued µops per cycle.
	Below int
	// FirstCycle is the first cycle the condition held (ok=false until
	// then).
	FirstCycle uint64
	Hit        bool
	// Count is the total number of cycles the condition held.
	Count uint64
}

// Probe returns the callback to install as tm.TM.Probe.
func (q *Query) Probe() func(cycle uint64, issued int) {
	return func(cycle uint64, issued int) {
		if issued < q.Below {
			if !q.Hit {
				q.Hit = true
				q.FirstCycle = cycle
			}
			q.Count++
		}
	}
}

// TreeNetwork models the §4.7 statistics fabric: the prototype's temporary
// per-Module taps consumed "significant global routing resources"; the fix
// is "a tree-based statistics network that will flow back through the
// Connectors". The model compares routing cost (point-to-point wires vs a
// tree) for n modules reporting w-bit counters.
type TreeNetwork struct {
	Modules int
	Width   int // bits per counter word
}

// FlatWires returns the global routing cost of the prototype's approach in
// wire-units: a dedicated w-bit path from every module all the way to the
// collection point, each spanning on average half the module array — the
// global routes that "limited the number of metrics tracked as well as
// impacted FPGA timing closure" (§4.7).
func (t TreeNetwork) FlatWires() int { return t.Modules * t.Width * (t.Modules / 2) }

// TreeWires returns the routing cost of the tree network: one w-bit link
// per tree edge (n-1 edges), each a short local hop between neighbouring
// modules/Connectors, time-multiplexing reports upward.
func (t TreeNetwork) TreeWires() int {
	if t.Modules == 0 {
		return 0
	}
	return (t.Modules - 1) * t.Width
}

// DrainCycles returns the host cycles to collect all counters through the
// tree root, one word per cycle.
func (t TreeNetwork) DrainCycles() int { return t.Modules }
