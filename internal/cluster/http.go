package cluster

// The coordinator's HTTP surface: the same /v1 API a single node serves
// (so every client — fastctl, the Go client, curl — is oblivious to
// sharding), plus GET /v1/cluster for topology. Progress is
// observation-driven: status/result requests refresh the referenced work
// from its owner node; the background prober covers node death between
// observations. Response framing deliberately mirrors internal/service
// byte for byte (same structs, same encoder, same trailing newline), so a
// coordinator sweep aggregation is byte-identical to a single node's.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/sim"
)

func (c *Coordinator) routes() {
	c.mux.HandleFunc("POST /v1/jobs", c.handleSubmitJob)
	c.mux.HandleFunc("GET /v1/jobs", c.handleListJobs)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJobStatus)
	c.mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleJobResult)
	c.mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleJobCancel)
	c.mux.HandleFunc("POST /v1/sweeps", c.handleSubmitSweep)
	c.mux.HandleFunc("GET /v1/sweeps", c.handleListSweeps)
	c.mux.HandleFunc("GET /v1/sweeps/{id}", c.handleSweepStatus)
	c.mux.HandleFunc("GET /v1/sweeps/{id}/result", c.handleSweepResult)
	c.mux.HandleFunc("GET /v1/engines", c.handleEngines)
	c.mux.HandleFunc("GET /v1/cluster", c.handleClusterView)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
}

// writeErr maps an error to the envelope. A node's *APIError passes
// through with its status and code (the coordinator is transparent to
// node-side rejections); anything else is a node_unavailable 503 — the
// caller should retry after the prober has had a chance to act.
func (c *Coordinator) writeErr(w http.ResponseWriter, err error) {
	var ae *client.APIError
	if errors.As(err, &ae) {
		service.WriteAPIError(w, ae.Status, service.ErrorBody{
			Code: ae.Code, Message: ae.Message, RetryAfterSec: ae.RetryAfterSec,
		})
		return
	}
	service.WriteAPIError(w, http.StatusServiceUnavailable, service.ErrorBody{
		Code:          service.CodeNodeUnavailable,
		Message:       fmt.Sprintf("node rpc failed: %v", err),
		RetryAfterSec: int(c.cfg.ProbeInterval/time.Second) + 1,
	})
}

func badParams(w http.ResponseWriter, msg string) {
	service.WriteAPIError(w, http.StatusBadRequest, service.ErrorBody{Code: service.CodeBadParams, Message: msg})
}

// decodeBody strictly decodes a bounded JSON request body, mirroring the
// node-side boundary (same limits, same rejections).
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		badParams(w, fmt.Sprintf("decode request: %v", err))
		return false
	}
	if dec.More() {
		badParams(w, "trailing data after JSON body")
		return false
	}
	return true
}

// mintJob allocates a coordinator job id and its tracking record (not yet
// published to c.jobs — publication happens after placement succeeds, so
// a rejected submission never becomes a visible ghost).
func (c *Coordinator) mintJob(engine string, rawParams json.RawMessage, p sim.Params, timeoutMS int64) *remoteJob {
	c.mu.Lock()
	c.seq++
	j := &remoteJob{
		id:        fmt.Sprintf("job-%06d", c.seq),
		seq:       c.seq,
		engine:    engine,
		rawParams: rawParams,
		timeoutMS: timeoutMS,
		submitted: time.Now(),
	}
	c.mu.Unlock()
	j.key = shardKey(j.id, engine, p)
	return j
}

// publishJob records a placed job under the coordinator's id.
func (c *Coordinator) publishJob(j *remoteJob, n *node, v service.JobView) {
	c.mu.Lock()
	j.node = n
	j.remoteID = v.ID
	j.assigned = time.Now()
	v.ID = j.id
	j.view = v
	j.terminal = service.Terminal(v.Status) && v.Status != service.StatusDone
	c.jobs[j.id] = j
	c.mu.Unlock()
}

func (c *Coordinator) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req service.JobRequest
	if !decodeBody(w, r, &req) {
		return
	}
	p, err := sim.DecodeParams(req.Params)
	if err != nil {
		badParams(w, err.Error())
		return
	}
	// Validate locally before burning a node round trip: the coordinator
	// runs the same binary as its nodes, so the registry and the Params
	// rules are authoritative here too.
	if !sim.Registered(req.Engine) {
		service.WriteAPIError(w, http.StatusBadRequest, service.ErrorBody{
			Code:    service.CodeUnknownEngine,
			Message: fmt.Sprintf("unknown engine %q (registered: %v)", req.Engine, sim.Names()),
		})
		return
	}
	if err := p.Validate(); err != nil {
		badParams(w, err.Error())
		return
	}
	j := c.mintJob(req.Engine, req.Params, p, req.TimeoutMS)
	v, n, perr := c.place(r.Context(), j, nil)
	if perr != nil {
		c.writeErr(w, perr)
		return
	}
	c.publishJob(j, n, v)
	if v.Status == service.StatusDone {
		// Placed straight onto a cache hit: pull the bytes while the node
		// is known alive.
		if raw, ok, err := n.cli.JobResult(r.Context(), j.remoteID); err == nil && ok {
			c.storeView(j, j.viewSnapshot(c), raw, true)
		}
	}
	c.mu.Lock()
	out := j.view
	c.mu.Unlock()
	service.WriteJSON(w, http.StatusAccepted, out)
}

// viewSnapshot reads j.view under the coordinator lock (helper for the
// submit fast path above).
func (j *remoteJob) viewSnapshot(c *Coordinator) service.JobView {
	c.mu.Lock()
	defer c.mu.Unlock()
	return j.view
}

func (c *Coordinator) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req service.SweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	points := req.Sweep.Points()
	if len(points) == 0 {
		badParams(w, "sweep expands to zero points")
		return
	}
	for i, pt := range points {
		if !sim.Registered(pt.Engine) {
			service.WriteAPIError(w, http.StatusBadRequest, service.ErrorBody{
				Code:    service.CodeUnknownEngine,
				Message: fmt.Sprintf("point %d: unknown engine %q", i, pt.Engine),
			})
			return
		}
		if err := pt.Params.Validate(); err != nil {
			badParams(w, fmt.Sprintf("point %d (%s): %v", i, pt, err))
			return
		}
	}

	// Mint the whole id block first — sweep id, then children in spec
	// order — exactly the sequence a single node would produce, so ids
	// (and therefore aggregations) match a single-node run byte for byte.
	c.mu.Lock()
	c.seq++
	sw := &remoteSweep{
		id:        fmt.Sprintf("sweep-%06d", c.seq),
		seq:       c.seq,
		submitted: time.Now(),
		points:    points,
		children:  make([]*remoteJob, len(points)),
	}
	for i, pt := range points {
		c.seq++
		sw.children[i] = &remoteJob{
			id:        fmt.Sprintf("job-%06d", c.seq),
			seq:       c.seq,
			engine:    pt.Engine,
			timeoutMS: req.TimeoutMS,
			submitted: sw.submitted,
		}
	}
	c.mu.Unlock()
	for i, pt := range points {
		j := sw.children[i]
		raw, err := json.Marshal(pt.Params)
		if err != nil {
			badParams(w, fmt.Sprintf("point %d (%s): %v", i, pt, err))
			return
		}
		j.rawParams = raw
		j.key = shardKey(j.id, pt.Engine, pt.Params)
	}

	// Place children in spec order. Sweep admission is all-or-nothing on a
	// single node; across nodes the closest honest equivalent is rollback:
	// any placement failure cancels the already-placed children and
	// rejects the sweep without publishing it.
	placed := make([]*node, len(points))
	views := make([]service.JobView, len(points))
	for i := range points {
		v, n, err := c.place(r.Context(), sw.children[i], nil)
		if err != nil {
			for k := 0; k < i; k++ {
				placed[k].cli.Cancel(r.Context(), views[k].ID)
			}
			c.writeErr(w, err)
			return
		}
		placed[i], views[i] = n, v
	}
	c.mu.Lock()
	for i, j := range sw.children {
		j.node = placed[i]
		j.remoteID = views[i].ID
		j.assigned = time.Now()
		v := views[i]
		v.ID = j.id
		j.view = v
		j.terminal = service.Terminal(v.Status) && v.Status != service.StatusDone
		c.jobs[j.id] = j
	}
	c.sweeps[sw.id] = sw
	out := c.sweepViewLocked(sw)
	c.mu.Unlock()
	service.WriteJSON(w, http.StatusAccepted, out)
}

// sweepViewLocked assembles the service.SweepView of a sharded sweep from
// the children's last-known views. Caller holds c.mu.
func (c *Coordinator) sweepViewLocked(sw *remoteSweep) service.SweepView {
	v := service.SweepView{
		ID:          sw.id,
		Total:       len(sw.children),
		ByStatus:    map[string]int{},
		JobIDs:      make([]string, len(sw.children)),
		SubmittedAt: sw.submitted,
	}
	terminal := 0
	for i, j := range sw.children {
		v.JobIDs[i] = j.id
		v.ByStatus[j.view.Status]++
		if j.view.Cached {
			v.Cached++
		}
		if j.terminal {
			terminal++
		}
	}
	v.Status = service.StatusRunning
	if terminal == len(sw.children) {
		v.Status = service.StatusDone
	}
	return v
}

func (c *Coordinator) lookupJob(w http.ResponseWriter, r *http.Request) (*remoteJob, bool) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	c.mu.Unlock()
	if !ok {
		service.WriteAPIError(w, http.StatusNotFound, service.ErrorBody{
			Code: service.CodeNotFound, Message: fmt.Sprintf("no job %q", r.PathValue("id")),
		})
	}
	return j, ok
}

func (c *Coordinator) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookupJob(w, r)
	if !ok {
		return
	}
	c.refreshJob(r.Context(), j)
	c.mu.Lock()
	v := j.view
	c.mu.Unlock()
	service.WriteJSON(w, http.StatusOK, v)
}

func (c *Coordinator) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookupJob(w, r)
	if !ok {
		return
	}
	c.refreshJob(r.Context(), j)
	c.mu.Lock()
	v, raw, terminal := j.view, j.raw, j.terminal
	c.mu.Unlock()
	switch {
	case terminal && v.Status == service.StatusDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(raw)
		w.Write([]byte("\n"))
	case terminal:
		service.WriteAPIError(w, http.StatusConflict, service.ErrorBody{
			Code:    service.CodeConflict,
			Message: fmt.Sprintf("job %s %s: %s", j.id, v.Status, v.Error),
		})
	default:
		service.WriteJSON(w, http.StatusAccepted, v)
	}
}

func (c *Coordinator) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookupJob(w, r)
	if !ok {
		return
	}
	c.refreshJob(r.Context(), j)
	c.mu.Lock()
	terminal, v, n, rid := j.terminal, j.view, j.node, j.remoteID
	c.mu.Unlock()
	if terminal {
		service.WriteAPIError(w, http.StatusConflict, service.ErrorBody{
			Code: service.CodeConflict, Message: fmt.Sprintf("job %s already %s", j.id, v.Status),
		})
		return
	}
	if n != nil {
		rv, err := n.cli.Cancel(r.Context(), rid)
		if err == nil {
			c.storeView(j, rv, nil, service.Terminal(rv.Status))
			c.mu.Lock()
			out := j.view
			c.mu.Unlock()
			service.WriteJSON(w, http.StatusOK, out)
			return
		}
		var ae *client.APIError
		if errors.As(err, &ae) {
			if ae.Code == service.CodeConflict {
				// Raced to terminal on the node; report conflict in the
				// coordinator's terms.
				c.refreshJob(r.Context(), j)
				c.mu.Lock()
				st := j.view.Status
				c.mu.Unlock()
				service.WriteAPIError(w, http.StatusConflict, service.ErrorBody{
					Code: service.CodeConflict, Message: fmt.Sprintf("job %s already %s", j.id, st),
				})
				return
			}
			c.writeErr(w, err)
			return
		}
		// The owner is unreachable: honor the user's intent locally — the
		// job terminates canceled and will never be reassigned.
		n.errors.Inc()
		n.healthy.Store(false)
	}
	v.Status = service.StatusCanceled
	v.Error = "canceled; owning node unreachable"
	v.FinishedAt = time.Now()
	c.storeView(j, v, nil, true)
	c.mu.Lock()
	out := j.view
	c.mu.Unlock()
	service.WriteJSON(w, http.StatusOK, out)
}

func (c *Coordinator) lookupSweep(w http.ResponseWriter, r *http.Request) (*remoteSweep, bool) {
	c.mu.Lock()
	sw, ok := c.sweeps[r.PathValue("id")]
	c.mu.Unlock()
	if !ok {
		service.WriteAPIError(w, http.StatusNotFound, service.ErrorBody{
			Code: service.CodeNotFound, Message: fmt.Sprintf("no sweep %q", r.PathValue("id")),
		})
	}
	return sw, ok
}

func (c *Coordinator) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := c.lookupSweep(w, r)
	if !ok {
		return
	}
	c.refreshSweep(r.Context(), sw)
	c.mu.Lock()
	v := c.sweepViewLocked(sw)
	c.mu.Unlock()
	service.WriteJSON(w, http.StatusOK, v)
}

func (c *Coordinator) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	sw, ok := c.lookupSweep(w, r)
	if !ok {
		return
	}
	c.refreshSweep(r.Context(), sw)
	c.mu.Lock()
	v := c.sweepViewLocked(sw)
	if v.Status != service.StatusDone {
		c.mu.Unlock()
		service.WriteJSON(w, http.StatusAccepted, v)
		return
	}
	out := service.SweepResults{ID: sw.id, Results: make([]service.SweepResult, len(sw.children))}
	for i, j := range sw.children {
		out.Results[i] = service.SweepResult{
			Index:  i,
			JobID:  j.id,
			Point:  sw.points[i].String(),
			Cached: j.view.Cached,
			Result: json.RawMessage(j.raw),
			Error:  j.view.Error,
		}
	}
	c.mu.Unlock()
	service.WriteJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleListJobs(w http.ResponseWriter, r *http.Request) {
	status, limit, afterSeq, err := service.ParseListQuery(r.URL.Query(), service.KnownStatus)
	if err != nil {
		badParams(w, err.Error())
		return
	}
	type row struct {
		seq  uint64
		view service.JobView
	}
	c.mu.Lock()
	rows := make([]row, 0, len(c.jobs))
	for _, j := range c.jobs {
		if afterSeq != 0 && j.seq >= afterSeq {
			continue
		}
		if status != "" && j.view.Status != status {
			continue
		}
		rows = append(rows, row{seq: j.seq, view: j.view})
	}
	c.mu.Unlock()
	sort.Slice(rows, func(i, k int) bool { return rows[i].seq > rows[k].seq })
	out := service.JobList{Jobs: []service.JobView{}}
	for i, rw := range rows {
		if i == limit {
			out.NextAfter = out.Jobs[len(out.Jobs)-1].ID
			break
		}
		out.Jobs = append(out.Jobs, rw.view)
	}
	service.WriteJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	status, limit, afterSeq, err := service.ParseListQuery(r.URL.Query(), func(s string) bool {
		return s == service.StatusRunning || s == service.StatusDone
	})
	if err != nil {
		badParams(w, err.Error())
		return
	}
	type row struct {
		seq  uint64
		view service.SweepView
	}
	c.mu.Lock()
	rows := make([]row, 0, len(c.sweeps))
	for _, sw := range c.sweeps {
		if afterSeq != 0 && sw.seq >= afterSeq {
			continue
		}
		v := c.sweepViewLocked(sw)
		if status != "" && v.Status != status {
			continue
		}
		rows = append(rows, row{seq: sw.seq, view: v})
	}
	c.mu.Unlock()
	sort.Slice(rows, func(i, k int) bool { return rows[i].seq > rows[k].seq })
	out := service.SweepList{Sweeps: []service.SweepView{}}
	for i, rw := range rows {
		if i == limit {
			out.NextAfter = out.Sweeps[len(out.Sweeps)-1].ID
			break
		}
		out.Sweeps = append(out.Sweeps, rw.view)
	}
	service.WriteJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleEngines(w http.ResponseWriter, r *http.Request) {
	// Same binary as the nodes, so the local registry is authoritative —
	// no fan-out needed.
	var out []service.EngineView
	for _, name := range sim.Names() {
		eng, err := sim.New(name, sim.Params{Workload: "164.gzip"})
		if err != nil {
			service.WriteAPIError(w, http.StatusInternalServerError,
				service.ErrorBody{Code: service.CodeInternal, Message: err.Error()})
			return
		}
		out = append(out, service.EngineView{Name: name, Description: eng.Describe()})
	}
	service.WriteJSON(w, http.StatusOK, out)
}

// NodeView is one worker in the GET /v1/cluster topology.
type NodeView struct {
	Name          string `json:"name"`
	Healthy       bool   `json:"healthy"`
	QueueDepth    int64  `json:"queue_depth"` // from the last successful probe
	Jobs          uint64 `json:"jobs"`        // placements (initial + reassigned + stolen-to)
	Errors        uint64 `json:"errors"`      // failed RPCs (transport or rejection)
	ProbeFailures uint64 `json:"probe_failures"`
}

// View is the GET /v1/cluster topology body.
type View struct {
	Nodes         []NodeView `json:"nodes"`
	Jobs          int        `json:"jobs"`   // coordinator-tracked jobs
	Sweeps        int        `json:"sweeps"` // coordinator-tracked sweeps
	Reassignments uint64     `json:"reassignments"`
	Steals        uint64     `json:"steals"`
}

func (c *Coordinator) handleClusterView(w http.ResponseWriter, r *http.Request) {
	v := View{
		Reassignments: c.reassignments.Value(),
		Steals:        c.steals.Value(),
	}
	for _, n := range c.nodes {
		v.Nodes = append(v.Nodes, NodeView{
			Name:          n.name,
			Healthy:       n.healthy.Load(),
			QueueDepth:    n.queueDepth.Load(),
			Jobs:          n.jobs.Value(),
			Errors:        n.errors.Value(),
			ProbeFailures: n.probeFailures.Value(),
		})
	}
	c.mu.Lock()
	v.Jobs, v.Sweeps = len(c.jobs), len(c.sweeps)
	c.mu.Unlock()
	service.WriteJSON(w, http.StatusOK, v)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c.tel.Metrics.WritePrometheus(w)
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	depth := 0
	for _, n := range c.nodes {
		depth += int(n.queueDepth.Load())
	}
	service.WriteJSON(w, http.StatusOK, service.Health{Status: "ok", QueueDepth: depth})
}
