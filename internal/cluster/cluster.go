// Package cluster shards the fastd /v1 API across worker nodes: a
// coordinator (fastd -coordinator -nodes host1,host2,...) that speaks the
// exact same HTTP surface as a single node, but places every job on a
// worker chosen by rendezvous hashing of its content address
// (engine + sim.Params.Key() — the cache key from internal/service), so
// identical submissions always land where their result is already cached,
// and adding a node moves only ~1/N of the key space.
//
// Fault model: the coordinator health-probes every node; when a node
// fails a probe (or a proxied call hits a transport error), its
// non-terminal jobs are resubmitted to the next node in rendezvous order
// (cluster_reassignments_total) and terminal results the coordinator has
// already pulled are unaffected — child results are fetched eagerly as
// they finish, so a node death after completion loses nothing. At
// sweep-aggregation time, queued stragglers on deep-queued nodes are
// stolen onto idle ones (cluster_steals_total). Runs are deterministic, so
// a duplicated run caused by any of this races to the identical bytes.
//
// The coordinator drives nodes through internal/service/client — the same
// typed client external users get — so the node RPC surface is the public
// API by construction.
package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/sim"
)

// Config wires a Coordinator. Nodes is the only required field.
type Config struct {
	// Nodes are the worker base URLs ("http://host:8080"). The node name
	// (the URL) is its rendezvous identity: keep it stable across
	// restarts or the key space reshuffles.
	Nodes []string
	// ProbeInterval spaces the health probes; <= 0 means 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe; <= 0 means 2s.
	ProbeTimeout time.Duration
	// StealAfter is how long a sweep child may sit queued on its node
	// before aggregation-time polling steals it onto a less loaded one;
	// <= 0 means 3s. Negative is impossible; set very large to disable.
	StealAfter time.Duration
	// Telemetry receives the cluster_* series. Nil allocates a fresh one.
	Telemetry *obs.Telemetry
}

// Coordinator is the sharding front end. Build with New (which starts the
// prober), mount Handler, Close to stop probing.
type Coordinator struct {
	cfg   Config
	tel   *obs.Telemetry
	mux   *http.ServeMux
	nodes []*node

	reassignments *obs.Counter
	steals        *obs.Counter

	mu     sync.Mutex
	seq    uint64
	jobs   map[string]*remoteJob
	sweeps map[string]*remoteSweep

	stop     chan struct{}
	stopOnce sync.Once
	probers  sync.WaitGroup
}

// node is one worker as the coordinator sees it.
type node struct {
	name       string // base URL; the rendezvous identity
	cli        *client.Client
	healthy    atomic.Bool
	queueDepth atomic.Int64 // from the last successful probe

	jobs          *obs.Counter // cluster_node_jobs_total{node=}
	errors        *obs.Counter // cluster_node_errors_total{node=}
	probeFailures *obs.Counter // cluster_node_probe_failures_total{node=}
}

// remoteJob is a coordinator-tracked job: a coordinator-minted id mapped
// to (node, remote id). All fields are guarded by the coordinator's mu;
// busy serializes the RPC-bearing operations (refresh, reassign, steal)
// per job so two pollers never race a reassignment.
type remoteJob struct {
	id        string // coordinator id (job-%06d), what clients see
	seq       uint64
	engine    string
	rawParams json.RawMessage // forwarded verbatim on every (re)submission
	key       string          // shard key: service.JobKey(engine, params)
	timeoutMS int64
	submitted time.Time

	node     *node  // current owner (nil only before first placement)
	remoteID string // the owner's id for this job
	assigned time.Time

	busy      bool
	view      service.JobView // last known view, ID rewritten to coordinator id
	terminal  bool            // view is final and raw (for done) is resident
	raw       []byte          // result bytes, pulled eagerly at completion
	reassigns int
}

// remoteSweep is a sharded sim.Sweep: coordinator-minted sweep id plus
// children in spec order, placed independently by their shard keys.
type remoteSweep struct {
	id        string
	seq       uint64
	submitted time.Time
	points    []sim.Point
	children  []*remoteJob
}

// New builds a coordinator over cfg.Nodes and starts the prober.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes configured")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.StealAfter <= 0 {
		cfg.StealAfter = 3 * time.Second
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = obs.New()
	}
	c := &Coordinator{
		cfg:           cfg,
		tel:           cfg.Telemetry,
		jobs:          map[string]*remoteJob{},
		sweeps:        map[string]*remoteSweep{},
		reassignments: cfg.Telemetry.Counter("cluster_reassignments_total"),
		steals:        cfg.Telemetry.Counter("cluster_steals_total"),
		stop:          make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, name := range cfg.Nodes {
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate node %q", name)
		}
		seen[name] = true
		cli := client.New(name)
		// The coordinator owns retry/reassignment policy; the per-node
		// client must fail fast so a dead node is detected, not slept on.
		cli.RetryMax = 0
		n := &node{
			name:          name,
			cli:           cli,
			jobs:          cfg.Telemetry.Counter(obs.L("cluster_node_jobs_total", "node", name)),
			errors:        cfg.Telemetry.Counter(obs.L("cluster_node_errors_total", "node", name)),
			probeFailures: cfg.Telemetry.Counter(obs.L("cluster_node_probe_failures_total", "node", name)),
		}
		n.healthy.Store(true)
		c.nodes = append(c.nodes, n)
	}
	c.mux = http.NewServeMux()
	c.routes()
	c.probers.Add(1)
	go c.probeLoop()
	return c, nil
}

// Handler returns the coordinator's HTTP surface (the same /v1 API a
// single node serves, plus GET /v1/cluster).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the prober. In-flight work on the nodes is untouched.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.probers.Wait()
}

// rendezvousScore ranks node ownership of a key: the node with the
// highest score owns it. Independent per node, so removing a node only
// moves that node's keys (highest-random-weight / rendezvous hashing).
func rendezvousScore(node, key string) uint64 {
	h := sha256.Sum256([]byte(node + "\x00" + key))
	return binary.BigEndian.Uint64(h[:8])
}

// candidates returns the healthy nodes ordered by descending rendezvous
// score for key, excluding skip. The first entry is the owner; the rest
// are the reassignment order when owners fail.
func (c *Coordinator) candidates(key string, skip *node) []*node {
	type scored struct {
		n *node
		s uint64
	}
	out := make([]scored, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n == skip || !n.healthy.Load() {
			continue
		}
		out = append(out, scored{n: n, s: rendezvousScore(n.name, key)})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].s > out[k].s })
	nodes := make([]*node, len(out))
	for i, sc := range out {
		nodes[i] = sc.n
	}
	return nodes
}

// shardKey is the rendezvous key of a job: its content address when it
// has one, else the coordinator job id — so uncacheable work still
// spreads deterministically.
func shardKey(coordID, engine string, p sim.Params) string {
	if k := service.JobKey(engine, p); k != "" {
		return k
	}
	return coordID
}

// place submits j to the best available node (in rendezvous order,
// excluding skip), marking nodes that fail transport as unhealthy along
// the way. Returns the accepting node's job view. Caller must hold j.busy
// (or exclusive ownership of a job not yet published).
func (c *Coordinator) place(ctx context.Context, j *remoteJob, skip *node) (service.JobView, *node, error) {
	var lastErr error
	for _, n := range c.candidates(j.key, skip) {
		v, err := n.cli.SubmitJob(ctx, j.engine, j.rawParams, time.Duration(j.timeoutMS)*time.Millisecond)
		if err == nil {
			n.jobs.Inc()
			return v, n, nil
		}
		lastErr = err
		var ae *client.APIError
		if !errors.As(err, &ae) {
			// Transport failure: the node is gone until a probe revives it.
			n.errors.Inc()
			n.healthy.Store(false)
			continue
		}
		n.errors.Inc()
		if ae.Status == 429 || ae.Status == 503 {
			// Backpressure: spill to the next node in rendezvous order.
			continue
		}
		// A live node rejected the job itself (bad params, unknown
		// engine): every node shares the registry, so propagate.
		return service.JobView{}, nil, err
	}
	if lastErr == nil {
		lastErr = &client.APIError{Status: 503, Code: service.CodeNodeUnavailable,
			Message: "no healthy node available", RetryAfterSec: int(c.cfg.ProbeInterval/time.Second) + 1}
	}
	return service.JobView{}, nil, lastErr
}

// acquire marks j busy for an RPC-bearing operation. Returns false when j
// is already terminal or another operation owns it.
func (c *Coordinator) acquire(j *remoteJob) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j.terminal || j.busy {
		return false
	}
	j.busy = true
	return true
}

func (c *Coordinator) release(j *remoteJob) {
	c.mu.Lock()
	j.busy = false
	c.mu.Unlock()
}

// refreshJob polls j's owner and pulls its state forward: done jobs have
// their result bytes fetched eagerly (so a later node death loses
// nothing), transport failures trigger reassignment to the next node in
// rendezvous order, and a node that restarted and forgot the job
// (not_found) gets it resubmitted.
func (c *Coordinator) refreshJob(ctx context.Context, j *remoteJob) {
	if !c.acquire(j) {
		return
	}
	defer c.release(j)

	c.mu.Lock()
	n, rid := j.node, j.remoteID
	c.mu.Unlock()
	if n == nil {
		c.reassign(ctx, j, nil)
		return
	}

	v, err := n.cli.Job(ctx, rid)
	if err != nil {
		var ae *client.APIError
		if errors.As(err, &ae) {
			n.errors.Inc()
			if ae.Code == service.CodeNotFound {
				// The node restarted and lost the job: run it again.
				c.reassign(ctx, j, nil)
			}
			return
		}
		n.errors.Inc()
		n.healthy.Store(false)
		c.reassign(ctx, j, n)
		return
	}

	var raw []byte
	if v.Status == service.StatusDone {
		res, ok, rerr := n.cli.JobResult(ctx, rid)
		if rerr != nil || !ok {
			// Couldn't pull the bytes yet; stay non-terminal and retry on
			// the next poll (or reassign if the node died in between).
			c.storeView(j, v, nil, false)
			return
		}
		raw = res
	}
	c.storeView(j, v, raw, service.Terminal(v.Status))
}

// storeView records the latest remote view under mu, rewriting the id to
// the coordinator's.
func (c *Coordinator) storeView(j *remoteJob, v service.JobView, raw []byte, terminal bool) {
	v.ID = j.id
	c.mu.Lock()
	j.view = v
	if raw != nil {
		j.raw = raw
	}
	if terminal {
		j.terminal = true
	}
	c.mu.Unlock()
}

// reassign moves j to the best node excluding failed (nil = just place it
// again). Caller must hold j.busy. No-op when no healthy node remains —
// the next probe or poll retries.
func (c *Coordinator) reassign(ctx context.Context, j *remoteJob, failed *node) {
	v, n, err := c.place(ctx, j, failed)
	if err != nil {
		return
	}
	remoteID := v.ID
	c.mu.Lock()
	j.node = n
	j.remoteID = remoteID
	j.assigned = time.Now()
	j.reassigns++
	v.ID = j.id
	j.view = v
	terminal := service.Terminal(v.Status)
	c.mu.Unlock()
	c.reassignments.Inc()
	if terminal {
		// Placed straight into a cache hit: pull the bytes now.
		if raw, ok, err := n.cli.JobResult(ctx, remoteID); err == nil && ok {
			c.mu.Lock()
			j.raw = raw
			j.terminal = true
			c.mu.Unlock()
		}
	}
}

// reassignNode re-places every non-terminal job owned by n — the
// probe-failure path.
func (c *Coordinator) reassignNode(n *node) {
	c.mu.Lock()
	var victims []*remoteJob
	for _, j := range c.jobs {
		if j.node == n && !j.terminal && !j.busy {
			victims = append(victims, j)
		}
	}
	c.mu.Unlock()
	for _, j := range victims {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
		c.refreshJob(ctx, j) // refresh hits the dead node and reassigns
		cancel()
	}
}

// probeLoop health-checks every node at the configured interval. A node
// that fails its probe is marked unhealthy, its probe-failure series
// bumped, and its jobs reassigned; a node that answers (even "draining")
// is healthy and publishes its queue depth for the stealing heuristic.
func (c *Coordinator) probeLoop() {
	defer c.probers.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		for _, n := range c.nodes {
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
			h, err := n.cli.Health(ctx)
			cancel()
			if err != nil {
				n.probeFailures.Inc()
				wasHealthy := n.healthy.Swap(false)
				if wasHealthy {
					c.reassignNode(n)
				}
				continue
			}
			n.queueDepth.Store(int64(h.QueueDepth))
			n.healthy.Store(true)
		}
	}
}

// stealStragglers is the aggregation-time work-stealing pass: children of
// sw still queued on their node past StealAfter are resubmitted to the
// healthy node with the shallowest probe-reported queue (when that is
// strictly shallower than the owner's) and cancelled best-effort on the
// old owner. Deterministic runs make the occasional double execution a
// race to identical bytes.
func (c *Coordinator) stealStragglers(ctx context.Context, sw *remoteSweep) {
	c.mu.Lock()
	var stuck []*remoteJob
	for _, j := range sw.children {
		if !j.terminal && !j.busy && j.node != nil &&
			j.view.Status == service.StatusQueued &&
			time.Since(j.assigned) > c.cfg.StealAfter {
			stuck = append(stuck, j)
		}
	}
	c.mu.Unlock()
	for _, j := range stuck {
		c.stealJob(ctx, j)
	}
}

// stealJob moves one queued job to the least loaded healthy node if that
// node's queue is strictly shallower than the owner's.
func (c *Coordinator) stealJob(ctx context.Context, j *remoteJob) {
	if !c.acquire(j) {
		return
	}
	defer c.release(j)

	c.mu.Lock()
	owner := j.node
	oldRemote := j.remoteID
	c.mu.Unlock()
	if owner == nil {
		return
	}
	var target *node
	for _, n := range c.nodes {
		if n == owner || !n.healthy.Load() {
			continue
		}
		if target == nil || n.queueDepth.Load() < target.queueDepth.Load() {
			target = n
		}
	}
	if target == nil || target.queueDepth.Load() >= owner.queueDepth.Load() {
		return
	}
	v, err := target.cli.SubmitJob(ctx, j.engine, j.rawParams, time.Duration(j.timeoutMS)*time.Millisecond)
	if err != nil {
		var ae *client.APIError
		if !errors.As(err, &ae) {
			target.errors.Inc()
			target.healthy.Store(false)
		}
		return
	}
	target.jobs.Inc()
	c.steals.Inc()
	c.mu.Lock()
	j.node = target
	j.remoteID = v.ID
	j.assigned = time.Now()
	j.reassigns++
	v.ID = j.id
	j.view = v
	c.mu.Unlock()
	// Best-effort: free the old owner's queue slot. If the job started
	// running in the race window this kills a run whose twin is now
	// queued elsewhere — identical bytes either way.
	owner.cli.Cancel(ctx, oldRemote)
}

// refreshSweep pulls every non-terminal child forward and runs the
// stealing pass. Called on every sweep status/result request — the
// coordinator has no background sweep poller; observation drives
// progress, and the prober covers node death between observations.
func (c *Coordinator) refreshSweep(ctx context.Context, sw *remoteSweep) {
	c.mu.Lock()
	pending := make([]*remoteJob, 0, len(sw.children))
	for _, j := range sw.children {
		if !j.terminal {
			pending = append(pending, j)
		}
	}
	c.mu.Unlock()
	for _, j := range pending {
		c.refreshJob(ctx, j)
	}
	c.stealStragglers(ctx, sw)
}
