package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/service/diskcache"
	"repro/internal/sim"
)

// Test engines, mirroring the service package's: clu-stub completes
// instantly with a params-derived result (checkable, byte-stable),
// clu-block parks until the gate opens (reachable mid-sweep states).
func init() {
	sim.Register("clu-stub", func() sim.Engine { return &stubEngine{} })
	sim.Register("clu-block", func() sim.Engine { return &blockEngine{} })
}

type stubEngine struct{ p sim.Params }

func (e *stubEngine) Describe() string             { return "test stub: result derived from params" }
func (e *stubEngine) Configure(p sim.Params) error { e.p = p; return nil }
func (e *stubEngine) Run() (sim.Result, error)     { return e.RunContext(context.Background()) }
func (e *stubEngine) RunContext(ctx context.Context) (sim.Result, error) {
	if err := ctx.Err(); err != nil {
		return sim.Result{}, err
	}
	return sim.Result{
		Engine:       "clu-stub",
		Workload:     e.p.Workload,
		Instructions: e.p.MaxInstructions,
		TargetCycles: 2 * e.p.MaxInstructions,
		IPC:          0.5,
	}, nil
}

var gate = struct {
	sync.Mutex
	ch     chan struct{}
	closed bool
}{ch: make(chan struct{})}

func resetGate() {
	gate.Lock()
	gate.ch = make(chan struct{})
	gate.closed = false
	gate.Unlock()
}

func openGate() {
	gate.Lock()
	if !gate.closed {
		close(gate.ch)
		gate.closed = true
	}
	gate.Unlock()
}

func gateCh() chan struct{} {
	gate.Lock()
	defer gate.Unlock()
	return gate.ch
}

type blockEngine struct{ p sim.Params }

func (e *blockEngine) Describe() string             { return "test stub: blocks until released" }
func (e *blockEngine) Configure(p sim.Params) error { e.p = p; return nil }
func (e *blockEngine) Run() (sim.Result, error)     { return e.RunContext(context.Background()) }
func (e *blockEngine) RunContext(ctx context.Context) (sim.Result, error) {
	select {
	case <-ctx.Done():
		return sim.Result{}, ctx.Err()
	case <-gateCh():
		return sim.Result{Engine: "clu-block", Workload: e.p.Workload, Instructions: e.p.MaxInstructions}, nil
	}
}

// workerNode is one real service.Server behind an httptest listener.
type workerNode struct {
	srv *service.Server
	ts  *httptest.Server
	tel *obs.Telemetry
}

func newWorker(t *testing.T, cfg service.Config) *workerNode {
	t.Helper()
	if cfg.Telemetry == nil {
		cfg.Telemetry = obs.New()
	}
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	n := &workerNode{srv: srv, ts: ts, tel: cfg.Telemetry}
	t.Cleanup(func() {
		ts.Close()
		openGate()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return n
}

// clusterHarness is a coordinator over real worker nodes, itself behind an
// httptest listener so tests drive it with the ordinary client.
type clusterHarness struct {
	workers []*workerNode
	coord   *Coordinator
	ts      *httptest.Server
	cli     *client.Client
}

func newCluster(t *testing.T, cfg Config, workers ...*workerNode) *clusterHarness {
	t.Helper()
	for _, w := range workers {
		cfg.Nodes = append(cfg.Nodes, w.ts.URL)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ts.Close()
		coord.Close()
	})
	cli := client.New(ts.URL)
	cli.Poll = 2 * time.Millisecond
	return &clusterHarness{workers: workers, coord: coord, ts: ts, cli: cli}
}

// nodeByName finds the coordinator's node record for a worker URL.
func (h *clusterHarness) nodeByName(t *testing.T, name string) *node {
	t.Helper()
	for _, n := range h.coord.nodes {
		if n.name == name {
			return n
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

// TestRendezvousStability: ownership is balanced-ish and removing a node
// only moves the removed node's keys — the property that keeps cache
// locality through membership changes.
func TestRendezvousStability(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	owner := func(key string, members []string) string {
		best, bestScore := "", uint64(0)
		for _, n := range members {
			if s := rendezvousScore(n, key); best == "" || s > bestScore {
				best, bestScore = n, s
			}
		}
		return best
	}
	counts := map[string]int{}
	before := map[string]string{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("fast\x00key-%d", i)
		o := owner(key, nodes)
		counts[o]++
		before[key] = o
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("node %s owns zero of 300 keys: %v", n, counts)
		}
	}
	// Drop node c: every key c did not own keeps its owner.
	for key, o := range before {
		if o == "http://c" {
			continue
		}
		if got := owner(key, nodes[:2]); got != o {
			t.Fatalf("key %q moved %s → %s when an unrelated node left", key, o, got)
		}
	}
}

const sweepSpec = `{"engines":["clu-stub"],"workloads":["164.gzip","176.gcc","186.crafty","197.parser"],"base":{"max_instructions":5000}}`

// TestSweepByteIdenticalToSingleNode is the core aggregation contract: a
// coordinator sweep over two workers returns byte-for-byte the response a
// fresh single node produces for the same spec.
func TestSweepByteIdenticalToSingleNode(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Reference: one fresh node, no coordinator.
	single := newWorker(t, service.Config{Workers: 2})
	scli := client.New(single.ts.URL)
	scli.Poll = 2 * time.Millisecond
	sv, err := scli.SubmitSweepRaw(ctx, json.RawMessage(sweepSpec), 0)
	if err != nil {
		t.Fatalf("single-node sweep: %v", err)
	}
	_, refBytes, err := scli.WaitSweepResult(ctx, sv.ID)
	if err != nil {
		t.Fatalf("single-node result: %v", err)
	}

	// Cluster: coordinator over two fresh workers.
	h := newCluster(t, Config{},
		newWorker(t, service.Config{Workers: 2}),
		newWorker(t, service.Config{Workers: 2}))
	cv, err := h.cli.SubmitSweepRaw(ctx, json.RawMessage(sweepSpec), 0)
	if err != nil {
		t.Fatalf("cluster sweep: %v", err)
	}
	if cv.ID != sv.ID {
		t.Fatalf("coordinator minted %s, single node %s — id sequences diverged", cv.ID, sv.ID)
	}
	_, cluBytes, err := h.cli.WaitSweepResult(ctx, cv.ID)
	if err != nil {
		t.Fatalf("cluster result: %v", err)
	}
	if !bytes.Equal(refBytes, cluBytes) {
		t.Fatalf("aggregation differs:\nsingle : %s\ncluster: %s", refBytes, cluBytes)
	}
}

// TestKillNodeMidSweep: with children parked across two nodes, killing one
// node mid-sweep reassigns its children to the survivor and the sweep
// still completes with every result present.
func TestKillNodeMidSweep(t *testing.T) {
	resetGate()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	a := newWorker(t, service.Config{Workers: 2, QueueDepth: 16})
	b := newWorker(t, service.Config{Workers: 2, QueueDepth: 16})
	h := newCluster(t, Config{ProbeInterval: 20 * time.Millisecond}, a, b)

	spec := `{"engines":["clu-block"],"workloads":["164.gzip","176.gcc","186.crafty","197.parser"],"base":{"max_instructions":100}}`
	sv, err := h.cli.SubmitSweepRaw(ctx, json.RawMessage(spec), 0)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}

	// Find a node that owns at least one child and kill it.
	h.coord.mu.Lock()
	owned := map[*node]int{}
	for _, j := range h.coord.jobs {
		owned[j.node]++
	}
	h.coord.mu.Unlock()
	var victim *workerNode
	var victimOwned int
	for _, w := range []*workerNode{a, b} {
		n := h.nodeByName(t, w.ts.URL)
		if owned[n] > 0 {
			victim, victimOwned = w, owned[n]
			break
		}
	}
	if victim == nil {
		t.Fatal("no node owns any child")
	}
	victim.ts.Close() // children parked there are gone with it

	// Release the engines and wait out the recovery: polling the sweep
	// result drives refresh → transport error → reassignment, and the
	// prober independently detects the death.
	openGate()
	out, _, err := h.cli.WaitSweepResult(ctx, sv.ID)
	if err != nil {
		t.Fatalf("sweep never recovered: %v", err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(out.Results))
	}
	for _, r := range out.Results {
		if r.Error != "" || len(r.Result) == 0 {
			t.Fatalf("child %d (%s) incomplete after node death: err=%q", r.Index, r.JobID, r.Error)
		}
	}
	if got := h.coord.reassignments.Value(); got < uint64(victimOwned) {
		t.Fatalf("reassignments = %d, want >= %d (children owned by killed node)", got, victimOwned)
	}
}

// TestProbeDetectsDeadNode: the background prober alone (no client
// polling) marks a dead node unhealthy, counts the probe failure, and
// reassigns its jobs.
func TestProbeDetectsDeadNode(t *testing.T) {
	resetGate()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	a := newWorker(t, service.Config{Workers: 1, QueueDepth: 16})
	b := newWorker(t, service.Config{Workers: 1, QueueDepth: 16})
	h := newCluster(t, Config{ProbeInterval: 15 * time.Millisecond}, a, b)

	v, err := h.cli.SubmitJob(ctx, "clu-block", json.RawMessage(`{"workload":"164.gzip"}`), 0)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	h.coord.mu.Lock()
	owner := h.coord.jobs[v.ID].node
	h.coord.mu.Unlock()
	var victim *workerNode
	if owner.name == a.ts.URL {
		victim = a
	} else {
		victim = b
	}
	victim.ts.Close()

	// No status polling: recovery must come from the prober.
	deadline := time.Now().Add(10 * time.Second)
	for h.coord.reassignments.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("prober never reassigned the dead node's job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if owner.probeFailures.Value() == 0 {
		t.Error("probe failure not counted for the dead node")
	}
	if owner.healthy.Load() {
		t.Error("dead node still marked healthy")
	}
	openGate()
	if _, err := h.cli.WaitResult(ctx, v.ID); err != nil {
		t.Fatalf("reassigned job never finished: %v", err)
	}
}

// TestStealStragglers: a sweep child stuck queued behind a busy node is
// stolen onto an idle one at aggregation time.
func TestStealStragglers(t *testing.T) {
	resetGate()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	busy := newWorker(t, service.Config{Workers: 1, QueueDepth: 8})
	idle := newWorker(t, service.Config{Workers: 1, QueueDepth: 8})
	// Prober parked (huge interval): queue depths are set by hand below.
	h := newCluster(t, Config{ProbeInterval: time.Hour, StealAfter: time.Millisecond}, busy, idle)
	busyNode := h.nodeByName(t, busy.ts.URL)
	idleNode := h.nodeByName(t, idle.ts.URL)

	// Park the busy node's only worker on a directly-submitted job.
	bcli := client.New(busy.ts.URL)
	park, err := bcli.SubmitJob(ctx, "clu-block", json.RawMessage(`{"workload":"164.gzip"}`), 0)
	if err != nil {
		t.Fatalf("park: %v", err)
	}
	for {
		pv, err := bcli.Job(ctx, park.ID)
		if err != nil {
			t.Fatal(err)
		}
		if pv.Status == service.StatusRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Force the sweep's one child onto the busy node, then restore.
	idleNode.healthy.Store(false)
	sv, err := h.cli.SubmitSweepRaw(ctx, json.RawMessage(`{"engines":["clu-block"],"workloads":["176.gcc"],"base":{}}`), 0)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	idleNode.healthy.Store(true)

	h.coord.mu.Lock()
	sw := h.coord.sweeps[sv.ID]
	child := sw.children[0]
	if child.node != busyNode {
		h.coord.mu.Unlock()
		t.Fatalf("child landed on %s, want the busy node", child.node.name)
	}
	child.assigned = time.Now().Add(-time.Minute) // long past StealAfter
	h.coord.mu.Unlock()
	busyNode.queueDepth.Store(3)
	idleNode.queueDepth.Store(0)

	h.coord.stealStragglers(ctx, sw)

	h.coord.mu.Lock()
	movedTo := child.node
	h.coord.mu.Unlock()
	if movedTo != idleNode {
		t.Fatalf("child still on %s after steal pass", movedTo.name)
	}
	if h.coord.steals.Value() != 1 {
		t.Fatalf("steals = %d, want 1", h.coord.steals.Value())
	}

	// The stolen child completes on the idle node once released.
	openGate()
	out, _, err := h.cli.WaitSweepResult(ctx, sv.ID)
	if err != nil {
		t.Fatalf("stolen sweep result: %v", err)
	}
	if out.Results[0].Error != "" || len(out.Results[0].Result) == 0 {
		t.Fatalf("stolen child incomplete: %+v", out.Results[0])
	}
	if runs := idle.tel.Metrics.Counter("service_engine_runs_total").Value(); runs != 1 {
		t.Fatalf("idle node engine runs = %d, want 1 (the stolen child)", runs)
	}
}

// TestClusterRestartServedFromDisk is the end-to-end durability
// acceptance: after every worker and the coordinator restart, a repeated
// sweep is answered entirely from the shared disk store — zero engine
// runs — with per-point result bytes identical to the first run.
func TestClusterRestartServedFromDisk(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dir := t.TempDir() // shared store directory, as NFS/bind mount would be

	buildWorkers := func() []*workerNode {
		var ws []*workerNode
		for i := 0; i < 2; i++ {
			store, err := diskcache.New(dir, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			ws = append(ws, newWorker(t, service.Config{Workers: 2, Store: store}))
		}
		return ws
	}

	ws1 := buildWorkers()
	h1 := newCluster(t, Config{}, ws1[0], ws1[1])
	sv1, err := h1.cli.SubmitSweepRaw(ctx, json.RawMessage(sweepSpec), 0)
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	out1, _, err := h1.cli.WaitSweepResult(ctx, sv1.ID)
	if err != nil {
		t.Fatalf("first result: %v", err)
	}

	// Full cluster restart: new workers (fresh memory, fresh telemetry)
	// over the same directory, new coordinator.
	h1.ts.Close()
	h1.coord.Close()
	for _, w := range ws1 {
		w.ts.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		w.srv.Shutdown(sctx)
		scancel()
	}

	ws2 := buildWorkers()
	h2 := newCluster(t, Config{}, ws2[0], ws2[1])
	sv2, err := h2.cli.SubmitSweepRaw(ctx, json.RawMessage(sweepSpec), 0)
	if err != nil {
		t.Fatalf("restart sweep: %v", err)
	}
	out2, _, err := h2.cli.WaitSweepResult(ctx, sv2.ID)
	if err != nil {
		t.Fatalf("restart result: %v", err)
	}

	if len(out1.Results) != len(out2.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(out1.Results), len(out2.Results))
	}
	for i := range out1.Results {
		if !bytes.Equal(out1.Results[i].Result, out2.Results[i].Result) {
			t.Fatalf("point %d bytes differ across restart:\n before %s\n after  %s",
				i, out1.Results[i].Result, out2.Results[i].Result)
		}
		if !out2.Results[i].Cached {
			t.Errorf("point %d not served from cache after restart", i)
		}
	}
	for i, w := range ws2 {
		if runs := w.tel.Metrics.Counter("service_engine_runs_total").Value(); runs != 0 {
			t.Fatalf("restarted worker %d ran %d engines, want 0 (disk-cache serve)", i, runs)
		}
	}
}

// TestClusterViewAndListing: topology and collection endpoints on the
// coordinator.
func TestClusterViewAndListing(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	h := newCluster(t, Config{},
		newWorker(t, service.Config{Workers: 2}),
		newWorker(t, service.Config{Workers: 2}))

	var ids []string
	for i := 0; i < 3; i++ {
		params := fmt.Sprintf(`{"workload":"164.gzip","max_instructions":%d}`, 1000+i)
		v, err := h.cli.SubmitJob(ctx, "clu-stub", json.RawMessage(params), 0)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
		if _, err := h.cli.WaitResult(ctx, v.ID); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}

	// Listing: newest first, pagination cursor chains.
	l, err := h.cli.ListJobs(ctx, "", 2, "")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(l.Jobs) != 2 || l.Jobs[0].ID != ids[2] || l.Jobs[1].ID != ids[1] {
		t.Fatalf("page 1 = %+v, want [%s %s]", l.Jobs, ids[2], ids[1])
	}
	l2, err := h.cli.ListJobs(ctx, "", 2, l.NextAfter)
	if err != nil {
		t.Fatalf("list page 2: %v", err)
	}
	if len(l2.Jobs) != 1 || l2.Jobs[0].ID != ids[0] || l2.NextAfter != "" {
		t.Fatalf("page 2 = %+v next=%q", l2.Jobs, l2.NextAfter)
	}

	// Topology: both nodes healthy, placements sum to the submissions.
	raw, err := h.cli.ClusterView(ctx)
	if err != nil {
		t.Fatalf("cluster view: %v", err)
	}
	var view View
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatalf("decode view: %v", err)
	}
	if len(view.Nodes) != 2 {
		t.Fatalf("view has %d nodes, want 2", len(view.Nodes))
	}
	var placed uint64
	for _, n := range view.Nodes {
		if !n.Healthy {
			t.Errorf("node %s unhealthy in a live cluster", n.Name)
		}
		placed += n.Jobs
	}
	if placed != 3 {
		t.Fatalf("placements = %d, want 3", placed)
	}
	if view.Jobs != 3 {
		t.Fatalf("view.Jobs = %d, want 3", view.Jobs)
	}
}
