package tm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Power estimation — the §6 extension: "We have started the process of
// incorporating power estimation into the timing model. The initial goal is
// not to perfectly estimate power, but to provide relative power estimates
// that will permit architects to compare different architectures."
//
// The model is activity-based: every structure charges a fixed energy unit
// per access (issue, cache access, predictor lookup, rename, commit), plus
// a static leakage charge per cycle proportional to structure capacity.
// Units are arbitrary ("energy units"); only ratios between configurations
// and workloads are meaningful — exactly the paper's stated goal.

// PowerWeights are per-event energy charges (arbitrary units) and per-cycle
// leakage.
type PowerWeights struct {
	ALUOp      float64
	FPUOp      float64
	BranchOp   float64
	LoadOp     float64 // dL1 access included
	StoreOp    float64
	Fetch      float64 // per instruction fetched (iL1 + predictor)
	Rename     float64 // per µop renamed
	Commit     float64 // per µop committed
	L2Access   float64
	MemAccess  float64
	Mispredict float64 // recovery energy (flush + refill)

	// LeakagePerKBCycle charges static power per KiB of SRAM capacity per
	// cycle.
	LeakagePerKBCycle float64
}

// DefaultPowerWeights is a set of relative weights in the spirit of early
// architectural power models (Wattch-style): FP and memory events cost a
// multiple of simple ALU events; leakage is small per cycle but always on.
func DefaultPowerWeights() PowerWeights {
	return PowerWeights{
		ALUOp:             1.0,
		FPUOp:             4.0,
		BranchOp:          1.2,
		LoadOp:            2.5,
		StoreOp:           2.0,
		Fetch:             1.5,
		Rename:            0.8,
		Commit:            0.5,
		L2Access:          8.0,
		MemAccess:         40.0,
		Mispredict:        12.0,
		LeakagePerKBCycle: 0.002,
	}
}

// PowerModel accumulates activity-based energy alongside a timing model.
// Attach with TM.AttachPower; it reads the TM's counters, so it costs the
// simulation nothing — like the statistics hardware of §4.6.
type PowerModel struct {
	W PowerWeights

	tm         *TM
	prev       powerSnapshot
	capacityKB float64

	Energy       float64 // dynamic
	Leakage      float64
	sampleCycles uint64
}

type powerSnapshot struct {
	cycles     uint64
	fetched    uint64
	uops       uint64
	issued     [isa.NumClasses]uint64
	l2, mem    uint64
	mispredict uint64
}

// AttachPower wires a power model to the TM (replacing any previous one).
func (t *TM) AttachPower(w PowerWeights) *PowerModel {
	capacity := float64(t.cfg.L1I.SizeBytes+t.cfg.L1D.SizeBytes+t.cfg.L2.SizeBytes) / 1024
	capacity += float64(t.cfg.ROBEntries*12+t.cfg.RSEntries*10+t.cfg.LSQEntries*9) / 1024
	capacity += 8192 * 2 / 8 / 1024  // PHT
	capacity += 8192 * 12 / 8 / 1024 // BTB
	p := &PowerModel{W: w, tm: t, capacityKB: capacity}
	p.prev = p.snap()
	return p
}

func (p *PowerModel) snap() powerSnapshot {
	s := p.tm.Stats
	return powerSnapshot{
		cycles:     s.Cycles,
		fetched:    s.Instructions, // committed ≈ fetched on the right path
		uops:       s.UOps,
		issued:     s.IssuedByClass,
		l2:         p.tm.L2.Stats().Accesses,
		mem:        p.tm.Memory.Stats().Accesses,
		mispredict: s.Mispredicts,
	}
}

// Sample folds activity since the last call into the energy accumulators
// and returns the average power (energy units per cycle) over the window.
func (p *PowerModel) Sample() float64 {
	cur := p.snap()
	d := func(a, b uint64) float64 { return float64(a - b) }
	w := p.W
	e := d(cur.fetched, p.prev.fetched) * w.Fetch
	e += d(cur.uops, p.prev.uops) * (w.Rename + w.Commit)
	e += d(cur.issued[isa.ClassALU], p.prev.issued[isa.ClassALU]) * w.ALUOp
	e += d(cur.issued[isa.ClassSystem], p.prev.issued[isa.ClassSystem]) * w.ALUOp
	e += d(cur.issued[isa.ClassFPU], p.prev.issued[isa.ClassFPU]) * w.FPUOp
	e += d(cur.issued[isa.ClassBranch], p.prev.issued[isa.ClassBranch]) * w.BranchOp
	e += d(cur.issued[isa.ClassLoad], p.prev.issued[isa.ClassLoad]) * w.LoadOp
	e += d(cur.issued[isa.ClassStore], p.prev.issued[isa.ClassStore]) * w.StoreOp
	e += d(cur.l2, p.prev.l2) * w.L2Access
	e += d(cur.mem, p.prev.mem) * w.MemAccess
	e += d(cur.mispredict, p.prev.mispredict) * w.Mispredict
	cycles := d(cur.cycles, p.prev.cycles)
	leak := cycles * p.capacityKB * w.LeakagePerKBCycle
	p.Energy += e
	p.Leakage += leak
	p.sampleCycles += cur.cycles - p.prev.cycles
	p.prev = cur
	if cycles == 0 {
		return 0
	}
	return (e + leak) / cycles
}

// Total returns accumulated energy (dynamic + leakage).
func (p *PowerModel) Total() float64 { return p.Energy + p.Leakage }

// AveragePower returns energy units per cycle over everything sampled.
func (p *PowerModel) AveragePower() float64 {
	if p.sampleCycles == 0 {
		return 0
	}
	return p.Total() / float64(p.sampleCycles)
}

// EnergyPerInstruction returns total energy over committed instructions —
// the metric for "write code that trades off power for performance" (§6).
func (p *PowerModel) EnergyPerInstruction() float64 {
	if p.tm.Stats.Instructions == 0 {
		return 0
	}
	return p.Total() / float64(p.tm.Stats.Instructions)
}

// Report renders the accumulated estimate.
func (p *PowerModel) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "relative power estimate (arbitrary units):\n")
	fmt.Fprintf(&b, "  dynamic energy   %12.1f\n", p.Energy)
	fmt.Fprintf(&b, "  leakage energy   %12.1f\n", p.Leakage)
	fmt.Fprintf(&b, "  avg power        %12.3f /cycle\n", p.AveragePower())
	fmt.Fprintf(&b, "  energy/inst      %12.3f\n", p.EnergyPerInstruction())
	return b.String()
}
