package tm

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/microcode"
	"repro/internal/trace"
)

// TestROBFullStalls: a long-latency load followed by a stream of
// independent work must back up into ROB-full stalls once the window
// fills (blocking caches keep the load outstanding).
func TestStructuralStalls(t *testing.T) {
	entries := record(t, `
		movi r1, 0x2000
		ldw  r2, [r1]     ; cold miss: 34 cycles
		movi r3, 1
		movi r4, 1
	burn:
		addi r3, 1
		addi r4, 1
		addi r3, 2
		addi r4, 2
		addi r3, 3
		addi r4, 3
		cmpi r3, 400
		jl   burn
		halt
	`, 10000)
	cfg := DefaultConfig()
	cfg.Predictor = "perfect"
	cfg.ROBEntries = 8
	cfg.RSEntries = 4
	model := replay(t, entries, cfg)
	if model.Stats.ROBFullStalls == 0 && model.Stats.RSFullStalls == 0 {
		t.Errorf("no structural stalls with a tiny window: %+v", model.Stats)
	}
}

func TestLSQFullStalls(t *testing.T) {
	// A burst of independent stores exceeds a 2-entry LSQ behind the
	// single blocking LSU.
	entries := record(t, `
		movi r1, 0x2000
		movi r0, 200
	loop:
		stw  r0, [r1]
		stw  r0, [r1+4]
		stw  r0, [r1+8]
		stw  r0, [r1+12]
		dec  r0
		jnz  loop
		halt
	`, 10000)
	cfg := DefaultConfig()
	cfg.Predictor = "perfect"
	cfg.LSQEntries = 2
	model := replay(t, entries, cfg)
	if model.Stats.LSQFullStalls == 0 {
		t.Errorf("no LSQ stalls with 2 entries: %+v", model.Stats)
	}
}

// TestTLBWriteMirrors: a software TLB fill carried in the trace must be
// inserted into the TM's TLB timing structures (§2's "data written to
// special registers, such as software-filled TLB entries").
func TestTLBWriteMirrors(t *testing.T) {
	tab := microcode.NewTable()
	crack := func(inst isa.Inst) []microcode.UOp { return tab.Crack(inst, 1).UOps }
	entries := []trace.Entry{
		{IN: 0, Op: isa.OpTlbWr, Size: 2, TLBWrite: true, TLBVPN: 0x42, Kernel: true,
			Microcode: true, UOps: crack(isa.Inst{Op: isa.OpTlbWr, Rd: 1, Rs: 2}), UopCount: 1},
		{IN: 1, Op: isa.OpHalt, Size: 1, Kernel: true,
			Microcode: true, UOps: crack(isa.Inst{Op: isa.OpHalt, Rd: isa.RegNone, Rs: isa.RegNone}), UopCount: 1},
	}
	model, err := New(DefaultConfig(), &SliceSource{Entries: entries}, nil)
	if err != nil {
		t.Fatal(err)
	}
	model.Run(1 << 16)
	// The mirrored VPN must now hit without a miss.
	if !model.DTLB.Access(0x42) {
		t.Error("mirrored TLB entry missing from dTLB timing structure")
	}
	if !model.ITLB.Access(0x42) {
		t.Error("mirrored TLB entry missing from iTLB timing structure")
	}
}

// TestDTLBMissPenalty: user-mode accesses to many distinct pages pay the
// dTLB miss penalty; the same footprint inside one page does not.
func TestDTLBMissPenalty(t *testing.T) {
	// Build synthetic user-mode traces directly (Kernel=false engages the
	// TM's TLB path).
	tab := microcode.NewTable()
	ldw := tab.Crack(isa.Inst{Op: isa.OpLdW, Rd: 1, Rs: 2}, 1).UOps
	mkTrace := func(stride uint32) []trace.Entry {
		var entries []trace.Entry
		pc := uint32(0x1000)
		for i := 0; i < 400; i++ {
			va := 0x100000 + uint32(i)*stride
			entries = append(entries, trace.Entry{
				IN: uint64(i), PC: pc, PPC: pc, Op: isa.OpLdW, Size: 4,
				MemVA: va, MemPA: va % (1 << 20), MemSize: 4,
				Kernel: false, Microcode: true, UopCount: 2,
				UOps: ldw,
			})
			pc += 4
		}
		return entries
	}
	run := func(stride uint32) *TM {
		model, err := New(func() Config { c := DefaultConfig(); c.Predictor = "perfect"; return c }(),
			&SliceSource{Entries: mkTrace(stride)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		model.Run(1 << 20)
		return model
	}
	samePage := run(4)
	manyPages := run(4096)
	if hr := samePage.DTLB.Stats().HitRate(); hr < 0.99 {
		t.Errorf("same-page dTLB hit rate %.3f", hr)
	}
	if hr := manyPages.DTLB.Stats().HitRate(); hr > 0.2 {
		t.Errorf("page-per-access dTLB hit rate %.3f, want misses", hr)
	}
	if manyPages.Stats.Cycles <= samePage.Stats.Cycles {
		t.Errorf("dTLB misses cost nothing: %d vs %d cycles",
			manyPages.Stats.Cycles, samePage.Stats.Cycles)
	}
}

// TestFutureMicroarchFixes: the §4.1 limitation fixes must each improve
// performance on the workloads they target — non-blocking caches on a
// miss-heavy independent-load stream, fast recovery on mispredict-heavy
// code.
func TestFutureMicroarchFixes(t *testing.T) {
	// Independent strided loads: misses can overlap only with MSHRs.
	missy := record(t, `
		movi r1, 0x2000
		movi r0, 300
	loop:
		ldw  r2, [r1]
		ldw  r3, [r1+4096]
		ldw  r4, [r1+8192]
		ldw  r5, [r1+12288]
		addi r1, 64
		dec  r0
		jnz  loop
		halt
	`, 100000)
	base := DefaultConfig()
	base.Predictor = "perfect"
	blocking := replay(t, missy, base)
	nb := base
	nb.MSHRs = 8
	nonblocking := replay(t, missy, nb)
	if nonblocking.Stats.Cycles >= blocking.Stats.Cycles {
		t.Errorf("non-blocking caches did not help: %d vs %d cycles",
			nonblocking.Stats.Cycles, blocking.Stats.Cycles)
	}

	// Mispredict-heavy code: fast recovery shortens the drain.
	branchy := record(t, `
		movi r0, 2000
		movi r5, 314159
	loop:
		movi r10, 1103515245
		mul  r5, r10
		addi r5, 12345
		mov  r6, r5
		shri r6, 16
		andi r6, 1
		cmpi r6, 0
		jz   skip
		addi r1, 1
	skip:	dec r0
		jnz  loop
		halt
	`, 100000)
	slow := replay(t, branchy, DefaultConfig())
	fastCfg := DefaultConfig()
	fastCfg.FastRecovery = true
	fast := replay(t, branchy, fastCfg)
	if fast.Stats.Cycles >= slow.Stats.Cycles {
		t.Errorf("fast recovery did not help: %d vs %d cycles",
			fast.Stats.Cycles, slow.Stats.Cycles)
	}
	if fast.Stats.DrainCycles >= slow.Stats.DrainCycles {
		t.Errorf("fast recovery did not cut drain cycles: %d vs %d",
			fast.Stats.DrainCycles, slow.Stats.DrainCycles)
	}
	// Architectural results unchanged by either fix.
	if fast.Stats.Instructions != slow.Stats.Instructions ||
		nonblocking.Stats.Instructions != blocking.Stats.Instructions {
		t.Error("microarchitecture options changed committed instruction counts")
	}

	// Combined config helper.
	both := DefaultConfig().WithFutureMicroarch()
	if both.MSHRs == 0 || !both.FastRecovery {
		t.Error("WithFutureMicroarch incomplete")
	}
}
