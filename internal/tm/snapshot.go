package tm

import (
	"fmt"
	"strings"
)

// Snapshot is a Figure 1-style view of the pipeline at the current cycle:
// which instruction numbers sit in each structure. It exists for the
// paper's transparency claim — "providing visibility into the simulated
// system" — and powers examples/pipeline.
type Snapshot struct {
	Cycle      uint64
	FetchIN    uint64   // next IN fetch will request from the trace buffer
	FetchQ     []uint64 // INs between fetch and decode
	DecodeBuf  int      // µops of the instruction currently cracking
	RenameQ    []uint64 // INs of µops between decode and rename
	ROB        []ROBSlot
	Recovering bool
	DrainFor   uint64 // IN being waited on when recovering
}

// ROBSlot describes one in-flight µop.
type ROBSlot struct {
	IN     uint64
	Kind   string
	Issued bool
	Done   bool
}

// Snapshot captures the current pipeline state.
func (t *TM) Snapshot() Snapshot {
	s := Snapshot{
		Cycle:      t.cycle,
		FetchIN:    t.fetchIN,
		DecodeBuf:  len(t.decodeBuf),
		Recovering: t.recovering,
		DrainFor:   t.recoverIN,
	}
	for _, it := range t.fetchQ.items {
		s.FetchQ = append(s.FetchQ, it.v.e.IN)
	}
	for _, u := range t.uopQ.items {
		s.RenameQ = append(s.RenameQ, u.v.ins.e.IN)
	}
	for _, u := range t.rob {
		s.ROB = append(s.ROB, ROBSlot{
			IN:     u.ins.e.IN,
			Kind:   u.kind.String(),
			Issued: u.issued,
			Done:   u.done && u.doneCycle <= t.cycle,
		})
	}
	return s
}

// fetchQ items access needs a tiny accessor on Connector.

func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "T=%-5d fetch@#%d", s.Cycle, s.FetchIN)
	if s.Recovering {
		fmt.Fprintf(&b, " [drain until #%d commits]", s.DrainFor)
	}
	fmt.Fprintf(&b, "\n  fetchQ:  %s\n", ins(s.FetchQ))
	fmt.Fprintf(&b, "  renameQ: %s\n", ins(s.RenameQ))
	fmt.Fprintf(&b, "  ROB:     ")
	for _, r := range s.ROB {
		state := "wait"
		if r.Done {
			state = "done"
		} else if r.Issued {
			state = "exec"
		}
		fmt.Fprintf(&b, "[#%d %s %s] ", r.IN, r.Kind, state)
	}
	b.WriteString("\n")
	return b.String()
}

func ins(v []uint64) string {
	if len(v) == 0 {
		return "(empty)"
	}
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("#%d", x)
	}
	return strings.Join(parts, " ")
}
