package tm

import (
	"testing"

	"repro/internal/fm"
	"repro/internal/fpga"
	"repro/internal/isa"
	"repro/internal/trace"
)

// record runs src on the functional model and returns its trace.
func record(t *testing.T, src string, max int) []trace.Entry {
	t.Helper()
	m := fm.New(fm.Config{MemBytes: 1 << 20, DisableInterrupts: true})
	m.LoadProgram(isa.MustAssemble(src, 0x1000))
	var out []trace.Entry
	for i := 0; i < max; i++ {
		e, ok := m.Step()
		if !ok {
			if m.Fatal() != nil {
				t.Fatalf("functional model fatal: %v", m.Fatal())
			}
			break
		}
		out = append(out, e)
	}
	return out
}

// replay runs a recorded trace through a TM with the given config.
func replay(t *testing.T, entries []trace.Entry, cfg Config) *TM {
	t.Helper()
	model, err := New(cfg, &SliceSource{Entries: entries}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if model.Run(10_000_000) >= 10_000_000 {
		t.Fatalf("timing model did not drain: %s", model.Describe())
	}
	return model
}

const loopSrc = `
	movi r0, 200
	movi r1, 0
loop:	add r1, r0
	dec r0
	jnz loop
	halt
`

func TestReplayCommitsEverything(t *testing.T) {
	entries := record(t, loopSrc, 10000)
	cfg := DefaultConfig()
	cfg.Predictor = "perfect"
	model := replay(t, entries, cfg)
	if got := model.Stats.Instructions; got != uint64(len(entries)) {
		t.Errorf("committed %d instructions, want %d", got, len(entries))
	}
	if model.Stats.UOps < model.Stats.Instructions {
		t.Error("fewer µops than instructions")
	}
	if ipc := model.Stats.IPC(); ipc <= 0 || ipc > float64(cfg.IssueWidth) {
		t.Errorf("IPC %v outside (0,%d]", ipc, cfg.IssueWidth)
	}
}

func TestPerfectVsGshareOrdering(t *testing.T) {
	// The loop branch is highly biased; gshare warms up quickly but still
	// mispredicts at least the exit; perfect never does. Perfect must be
	// at least as fast, and must have zero drain cycles.
	entries := record(t, loopSrc, 10000)
	perfect := replay(t, entries, func() Config { c := DefaultConfig(); c.Predictor = "perfect"; return c }())
	gshare := replay(t, entries, DefaultConfig())
	if perfect.Stats.Cycles > gshare.Stats.Cycles {
		t.Errorf("perfect BP slower (%d) than gshare (%d)", perfect.Stats.Cycles, gshare.Stats.Cycles)
	}
	if perfect.Stats.Mispredicts != 0 || perfect.Stats.DrainCycles != 0 {
		t.Errorf("perfect BP mispredicted: %+v", perfect.Stats)
	}
	if gshare.Stats.Mispredicts == 0 {
		t.Error("gshare never mispredicted (loop exit must miss)")
	}
	if gshare.Stats.DrainCycles == 0 {
		t.Error("no drain cycles recorded for gshare mispredicts")
	}
	if acc := gshare.BPStats.Accuracy(); acc < 0.9 {
		t.Errorf("gshare accuracy %.3f on a biased loop, want > 0.9", acc)
	}
}

func TestDependentChainSlowerThanIndependent(t *testing.T) {
	dep := record(t, `
		movi r0, 1
		add r0, r0
		add r0, r0
		add r0, r0
		add r0, r0
		add r0, r0
		add r0, r0
		add r0, r0
		add r0, r0
		halt
	`, 100)
	indep := record(t, `
		movi r0, 1
		movi r1, 1
		movi r2, 1
		movi r3, 1
		movi r4, 1
		movi r5, 1
		movi r6, 1
		movi r7, 1
		movi r8, 1
		halt
	`, 100)
	cfg := DefaultConfig()
	cfg.Predictor = "perfect"
	depTM := replay(t, dep, cfg)
	indepTM := replay(t, indep, cfg)
	if depTM.Stats.Cycles <= indepTM.Stats.Cycles {
		t.Errorf("dependent chain (%d cycles) not slower than independent (%d)",
			depTM.Stats.Cycles, indepTM.Stats.Cycles)
	}
}

func TestCacheMissesSlowExecution(t *testing.T) {
	// Strided loads covering > L1 capacity must miss and take longer than
	// repeatedly hitting one line.
	hot := record(t, `
		movi r0, 100
		movi r1, 0x2000
	loop:	ldw r2, [r1]
		dec r0
		jnz loop
		halt
	`, 10000)
	cold := record(t, `
		movi r0, 100
		movi r1, 0x2000
	loop:	ldw r2, [r1]
		addi r1, 4096
		dec r0
		jnz loop
		halt
	`, 10000)
	cfg := DefaultConfig()
	cfg.Predictor = "perfect"
	hotTM := replay(t, hot, cfg)
	coldTM := replay(t, cold, cfg)
	if hotTM.DL1.Stats().HitRate() < 0.95 {
		t.Errorf("hot loop dL1 hit rate %.3f", hotTM.DL1.Stats().HitRate())
	}
	if coldTM.DL1.Stats().HitRate() > 0.2 {
		t.Errorf("strided loop dL1 hit rate %.3f, want misses", coldTM.DL1.Stats().HitRate())
	}
	// cold has one extra addi per iteration; cycles must still be
	// dominated by miss latency.
	if coldTM.Stats.Cycles < hotTM.Stats.Cycles+uint64(90*cfg.MemLatency/2) {
		t.Errorf("misses too cheap: cold %d vs hot %d cycles",
			coldTM.Stats.Cycles, hotTM.Stats.Cycles)
	}
}

func TestIssueWidthSpeedsUp(t *testing.T) {
	entries := record(t, `
		movi r0, 50
	loop:
		movi r1, 1
		movi r2, 2
		movi r3, 3
		movi r4, 4
		add  r1, r2
		add  r3, r4
		dec  r0
		jnz  loop
		halt
	`, 10000)
	mk := func(w int) Config {
		c := DefaultConfig().WithIssueWidth(w)
		c.Predictor = "perfect"
		return c
	}
	w1 := replay(t, entries, mk(1))
	w4 := replay(t, entries, mk(4))
	if w4.Stats.Cycles >= w1.Stats.Cycles {
		t.Errorf("4-issue (%d cycles) not faster than 1-issue (%d)",
			w4.Stats.Cycles, w1.Stats.Cycles)
	}
	if ipc := w4.Stats.IPC(); ipc <= 1.0 {
		t.Errorf("4-issue IPC %.3f on parallel code, want > 1", ipc)
	}
}

func TestRepMovsOccupiesLSU(t *testing.T) {
	entries := record(t, `
		movi r0, 0x2000
		movi r1, 0x3000
		movi r2, 64
		rep movs
		halt
	`, 1000)
	cfg := DefaultConfig()
	cfg.Predictor = "perfect"
	model := replay(t, entries, cfg)
	// 64 iterations × (4 body + 2 overhead) µops plus setup.
	if model.Stats.UOps < 64*6 {
		t.Errorf("rep movs committed %d µops, want ≥ %d", model.Stats.UOps, 64*6)
	}
	if model.Stats.Instructions != uint64(len(entries)) {
		t.Errorf("instructions %d != %d", model.Stats.Instructions, len(entries))
	}
}

func TestExceptionSerializes(t *testing.T) {
	// Recorded at base 0 so the program can lay out its own IVT.
	m := fm.New(fm.Config{MemBytes: 1 << 20, DisableInterrupts: true})
	m.LoadProgram(isa.MustAssemble(`
		.org 0
		.space 256
		.org 0x400
	handler:
		movi r1, 2
		iret
		.org 0x1000
	entry:
		movi r8, handler
		movi r9, 8
		stw  r8, [r9]
		movi r0, 8
		movi r1, 0
		div  r0, r1
		halt
	.entry entry
	`, 0))
	var entries []trace.Entry
	for {
		e, ok := m.Step()
		if !ok {
			break
		}
		entries = append(entries, e)
	}
	model := replay(t, entries, DefaultConfig())
	if model.Stats.Exceptions == 0 {
		t.Error("no exception observed by the TM")
	}
	if model.Stats.Serializes == 0 {
		t.Error("exception did not serialize the front end")
	}
	if model.Stats.Instructions != uint64(len(entries)) {
		t.Errorf("instructions %d != %d", model.Stats.Instructions, len(entries))
	}
}

func TestNestedBranchLimit(t *testing.T) {
	// A dense run of branches cannot have more than MaxNestedBranches
	// unresolved; with the limit at 1 the run must take longer than with 4.
	src := `
		movi r0, 100
	loop:	cmpi r0, 0
		jz   done
		cmpi r0, 50
		jz   skip1
	skip1:	cmpi r0, 51
		jz   skip2
	skip2:	dec r0
		jmp  loop
	done:	halt
	`
	entries := record(t, src, 100000)
	mk := func(nested int) Config {
		c := DefaultConfig()
		c.Predictor = "perfect"
		c.MaxNestedBranches = nested
		return c
	}
	one := replay(t, entries, mk(1))
	four := replay(t, entries, mk(4))
	if one.Stats.Cycles <= four.Stats.Cycles {
		t.Errorf("nested=1 (%d cycles) not slower than nested=4 (%d)",
			one.Stats.Cycles, four.Stats.Cycles)
	}
}

func TestHostCycleAccounting(t *testing.T) {
	entries := record(t, loopSrc, 10000)
	model := replay(t, entries, DefaultConfig())
	per := model.PerTargetCycle()
	if per < 15 || per > 80 {
		t.Errorf("host cycles per target cycle %.1f outside the plausible "+
			"prototype range [15,80] (§4.5: ~20 is 'reasonable', the "+
			"prototype used more)", per)
	}
	w1, _ := New(DefaultConfig().WithIssueWidth(1), &SliceSource{Entries: entries}, nil)
	w1.Run(10_000_000)
	w8, _ := New(DefaultConfig().WithIssueWidth(8), &SliceSource{Entries: entries}, nil)
	w8.Run(10_000_000)
	if w8.PerTargetCycle() <= w1.PerTargetCycle() {
		t.Errorf("8-issue host cost (%.1f) not above 1-issue (%.1f): "+
			"multi-host-cycle folding missing", w8.PerTargetCycle(), w1.PerTargetCycle())
	}
}

func TestTable2AreaFlatAcrossIssueWidths(t *testing.T) {
	dev := fpga.Virtex4LX200
	var logic [4]float64
	widths := []int{1, 2, 4, 8}
	for i, w := range widths {
		a := DefaultConfig().WithIssueWidth(w).Area()
		logic[i] = dev.LogicFraction(a)
		if !dev.Fits(a) {
			t.Errorf("width %d does not fit the LX200: %v", w, a)
		}
		if bf := dev.BRAMFraction(a); bf < 0.48 || bf > 0.54 {
			t.Errorf("width %d BRAM fraction %.3f outside Table 2's ~0.50-0.512", w, bf)
		}
		if logic[i] < 0.30 || logic[i] > 0.36 {
			t.Errorf("width %d logic fraction %.3f outside Table 2's ~0.328", w, logic[i])
		}
	}
	if spread := logic[3] - logic[0]; spread > 0.01 {
		t.Errorf("logic fraction spread %.4f across widths; Table 2 is flat", spread)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.ROBEntries = 0 },
		func(c *Config) { c.RSEntries = 0 },
		func(c *Config) { c.ALUs = 0 },
		func(c *Config) { c.MaxNestedBranches = 0 },
		func(c *Config) { c.FrontEndDepth = 0 },
	}
	for i, f := range bad {
		c := DefaultConfig()
		f(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{}, &SliceSource{}, nil); err == nil {
		t.Error("New accepted zero config")
	}
	c := DefaultConfig()
	c.Predictor = "bogus"
	if _, err := New(c, &SliceSource{}, nil); err == nil {
		t.Error("New accepted unknown predictor")
	}
}

func TestDescribeAndConfigDescribe(t *testing.T) {
	entries := record(t, loopSrc, 10000)
	model := replay(t, entries, DefaultConfig())
	if model.Describe() == "" {
		t.Error("empty Describe")
	}
	if DefaultConfig().Describe() == "" {
		t.Error("empty config description")
	}
}

func TestConnectorSemantics(t *testing.T) {
	c := NewConnector[int]("t", ConnectorConfig{
		InputThroughput: 2, OutputThroughput: 1, MinLatency: 2, MaxTransactions: 3,
	})
	if !c.Put(0, 1) || !c.Put(0, 2) {
		t.Fatal("puts within throughput failed")
	}
	if c.Put(0, 3) {
		t.Error("third put same cycle exceeded input throughput")
	}
	if !c.Put(1, 3) {
		t.Error("put next cycle failed")
	}
	if c.Put(1, 4) {
		t.Error("put into full connector succeeded")
	}
	if _, ok := c.Get(1); ok {
		t.Error("get before MinLatency succeeded")
	}
	v, ok := c.Get(2)
	if !ok || v != 1 {
		t.Errorf("get = %d, %v", v, ok)
	}
	if _, ok := c.Get(2); ok {
		t.Error("second get same cycle exceeded output throughput")
	}
	if v, ok := c.Get(3); !ok || v != 2 {
		t.Errorf("FIFO order violated: %d, %v", v, ok)
	}
	st := c.Stats()
	if st.Puts != 3 || st.Gets != 2 || st.PutStalls != 2 || st.GetStalls != 2 {
		t.Errorf("stats = %+v", st)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Error("flush left items")
	}
}

func TestConnectorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad connector config did not panic")
		}
	}()
	NewConnector[int]("bad", ConnectorConfig{})
}

// TestDeterminism: replaying the same trace through two fresh timing models
// yields identical statistics — the simulator is reproducible by
// construction ("The timing model generates interrupts for
// reproducibility", §3.4; no wall-clock or randomness anywhere).
func TestDeterminism(t *testing.T) {
	entries := record(t, loopSrc, 10000)
	a := replay(t, entries, DefaultConfig())
	b := replay(t, entries, DefaultConfig())
	if a.Stats != b.Stats {
		t.Errorf("stats differ across identical replays:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.BPStats != b.BPStats {
		t.Error("predictor stats differ across identical replays")
	}
	if a.HostCycles() != b.HostCycles() {
		t.Error("host-cycle accounting differs across identical replays")
	}
}

// TestSnapshotInvariants: the transparency view must be consistent — ROB
// instruction numbers nondecreasing (in-order allocation), queue contents
// within the produced window, counts bounded by capacities.
func TestSnapshotInvariants(t *testing.T) {
	entries := record(t, loopSrc, 10000)
	model, err := New(DefaultConfig(), &SliceSource{Entries: entries}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for !model.Done() {
		model.Step()
		s := model.Snapshot()
		if len(s.ROB) > model.Config().ROBEntries {
			t.Fatalf("cycle %d: ROB snapshot %d > capacity", s.Cycle, len(s.ROB))
		}
		for i := 1; i < len(s.ROB); i++ {
			if s.ROB[i].IN < s.ROB[i-1].IN {
				t.Fatalf("cycle %d: ROB INs out of order: %v", s.Cycle, s.ROB)
			}
		}
		for _, in := range s.FetchQ {
			if in >= s.FetchIN {
				t.Fatalf("cycle %d: fetchQ holds unfetched IN %d", s.Cycle, in)
			}
		}
		if s.String() == "" {
			t.Fatal("empty snapshot render")
		}
	}
}
