package tm

import "repro/internal/fpga"

// workCounts records what one target cycle actually did; the host model
// charges FPGA cycles accordingly (§4.5: "even bubbles consume some host
// cycles and if there are many bubbles, those host cycles add up and become
// a bottleneck").
type workCounts struct {
	fetched   int
	decoded   int
	renamed   int
	issued    int
	committed int
	predicted bool
	memIssued bool
}

// hostModel charges host (FPGA) cycles per target cycle. Structures wider
// than the FPGA's dual-ported block RAMs are folded over multiple host
// cycles (§3.3), so the charge grows with issue width while area does not.
type hostModel struct {
	base      uint64 // control, statistics, connector sequencing
	rename    uint64 // ROB/rename table ports folded
	commit    uint64
	wakeup    uint64 // RS scan
	selectFUs uint64
	total     uint64
}

func (h *hostModel) init(cfg Config) {
	// The prototype "had not paid sufficient attention to the number of
	// host cycles consumed, resulting in a larger number of host cycles
	// per target cycle than the approximately twenty or so ... we feel is
	// reasonable" (§4.5) — much of it the temporary per-Module statistics
	// fabric (§4.7). The base charge reflects that prototype, not the
	// eventual optimized design.
	h.base = 30
	h.rename = uint64(fpga.HostCyclesForPorts(3 * cfg.IssueWidth))
	h.commit = uint64(fpga.HostCyclesForPorts(2 * cfg.IssueWidth))
	h.wakeup = uint64((cfg.RSEntries + 7) / 8)
	h.selectFUs = 3 // ALU, BRU, LSU arbitration passes
}

// account charges one target cycle's host cost.
func (h *hostModel) account(w workCounts) {
	c := h.base + h.rename + h.commit + h.wakeup + h.selectFUs
	c += 2 // fetch: iTLB + iL1 tag sequencing
	if w.predicted {
		c++ // PHT/BTB folded lookup
	}
	if w.decoded > 0 {
		c += uint64(w.decoded) // microcode table read per µop
	} else {
		c++ // decode control still ticks
	}
	if w.memIssued {
		c += 2 // dL1 tag + data sequencing
	}
	h.total += c
}

// PerTargetCycle returns the long-run average host cycles per target cycle.
func (t *TM) PerTargetCycle() float64 {
	if t.Stats.Cycles == 0 {
		return 0
	}
	return float64(t.host.total) / float64(t.Stats.Cycles)
}
