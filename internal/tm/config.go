package tm

import (
	"fmt"
	"strings"

	"repro/internal/cache"
)

// Config describes the target microarchitecture (Figure 3 and §4): "a
// two-issue single core with eight-way 32KB L1 instruction and data caches,
// an eight-way 256KB shared L2 cache, 64 ROB entries, 16 shared reservation
// stations, 16 load/store queue entries, a 4-way and 8K BTB gshare branch
// predictor, multiple branch units, one load/store unit, eight
// general-purpose ALUs and up to four nested branches. The pipeline is
// between eight and ten stages deep."
type Config struct {
	IssueWidth     int // instructions fetched / µops renamed & committed per cycle
	ROBEntries     int // µops
	RSEntries      int // shared reservation stations (µops)
	LSQEntries     int // load/store queue (memory µops)
	ALUs           int
	BranchUnits    int
	LoadStoreUnits int
	FPUs           int

	// MaxNestedBranches bounds unresolved in-flight branches (§4: "up to
	// four nested branches"); fetch stalls beyond it.
	MaxNestedBranches int

	// FrontEndDepth is the fetch-to-rename depth in cycles; it sets the
	// refill penalty after a flush and, with the back end, the 8-10 stage
	// pipeline.
	FrontEndDepth int

	// Predictor selects the branch predictor: "perfect", "97%", "95%",
	// "2bit", "gshare".
	Predictor string

	L1I, L1D, L2 cache.Config
	MemLatency   int // fixed DRAM delay (Figure 3: 25)

	ITLBEntries, DTLBEntries int
	TLBMissPenalty           int // front-end stall cycles on an iTLB miss

	// Latencies per functional unit.
	ALULatency, BranchLatency, FPULatency, StoreLatency int

	// The §4.1 prototype limitations, fixable per §4.5 ("Improving
	// performance requires ... improving the target microarchitecture
	// (e.g., non-blocking caches and better handling of branch
	// mis-speculation)"):
	//
	// MSHRs > 0 makes the data cache non-blocking: the LSU can issue the
	// next memory operation while up to MSHRs misses are outstanding
	// (hit-under-miss and miss-under-miss).
	MSHRs int
	// FastRecovery resumes fetch FrontEndDepth cycles after a mispredicted
	// branch *resolves*, instead of the prototype's flush-through-ROB
	// (fetch gated on the branch's commit).
	FastRecovery bool

	// Shared, when non-nil, is the shared L2 + directory of a multicore
	// target: the private L1s forward their misses through this core's
	// interconnect port instead of a private L2, and the L2/MemLatency
	// fields above are ignored (the shared hierarchy owns them). CoreID
	// selects the port.
	Shared *cache.Coherent
	CoreID int
}

// DefaultConfig is the prototype's target (Figure 3 with default delays).
func DefaultConfig() Config {
	return Config{
		IssueWidth:        2,
		ROBEntries:        64,
		RSEntries:         16,
		LSQEntries:        16,
		ALUs:              8,
		BranchUnits:       2,
		LoadStoreUnits:    1,
		FPUs:              1,
		MaxNestedBranches: 4,
		FrontEndDepth:     4,
		Predictor:         "gshare",
		L1I:               cache.DefaultL1I(),
		L1D:               cache.DefaultL1D(),
		L2:                cache.DefaultL2(),
		MemLatency:        25,
		ITLBEntries:       32,
		DTLBEntries:       32,
		TLBMissPenalty:    3,
		ALULatency:        1,
		BranchLatency:     1,
		FPULatency:        4,
		StoreLatency:      1,
	}
}

// WithFutureMicroarch applies the §4.1/§4.5 fixes the paper was working
// on: non-blocking caches and resolve-time mispredict recovery.
func (c Config) WithFutureMicroarch() Config {
	c.MSHRs = 8
	c.FastRecovery = true
	return c
}

// WithIssueWidth returns the configuration rescaled to another issue width,
// the Table 2 sweep. Only widths change; capacities stay, which is exactly
// why the FPGA footprint stays flat (§3.3's multi-host-cycle structures).
func (c Config) WithIssueWidth(w int) Config {
	c.IssueWidth = w
	if c.BranchUnits < (w+1)/2 {
		c.BranchUnits = (w + 1) / 2
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.IssueWidth < 1:
		return fmt.Errorf("tm: issue width %d", c.IssueWidth)
	case c.ROBEntries < c.IssueWidth:
		return fmt.Errorf("tm: ROB %d smaller than issue width", c.ROBEntries)
	case c.RSEntries < 1 || c.LSQEntries < 1:
		return fmt.Errorf("tm: empty RS or LSQ")
	case c.ALUs < 1 || c.BranchUnits < 1 || c.LoadStoreUnits < 1:
		return fmt.Errorf("tm: missing functional units")
	case c.MaxNestedBranches < 1:
		return fmt.Errorf("tm: max nested branches %d", c.MaxNestedBranches)
	case c.FrontEndDepth < 1:
		return fmt.Errorf("tm: front end depth %d", c.FrontEndDepth)
	}
	return nil
}

// Describe renders the configuration in the style of Figure 3 (used by
// cmd/fastsim -print-config).
func (c Config) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Target microarchitecture (Figure 3):\n")
	fmt.Fprintf(&b, "  issue width          %d\n", c.IssueWidth)
	fmt.Fprintf(&b, "  pipeline depth       %d front-end + execute + commit (8-10 stages)\n", c.FrontEndDepth)
	fmt.Fprintf(&b, "  branch predictor     %s, %d nested branches max\n", c.Predictor, c.MaxNestedBranches)
	fmt.Fprintf(&b, "  ROB                  %d entries\n", c.ROBEntries)
	fmt.Fprintf(&b, "  reservation stations %d shared\n", c.RSEntries)
	fmt.Fprintf(&b, "  load/store queue     %d entries, %d LSU\n", c.LSQEntries, c.LoadStoreUnits)
	fmt.Fprintf(&b, "  ALUs                 %d (latency %d)\n", c.ALUs, c.ALULatency)
	fmt.Fprintf(&b, "  branch units         %d (latency %d)\n", c.BranchUnits, c.BranchLatency)
	fmt.Fprintf(&b, "  FPUs                 %d (latency %d)\n", c.FPUs, c.FPULatency)
	fmt.Fprintf(&b, "  iL1                  %dKB %d-way, hit %d\n", c.L1I.SizeBytes>>10, c.L1I.Ways, c.L1I.HitLatency)
	fmt.Fprintf(&b, "  dL1                  %dKB %d-way, hit %d\n", c.L1D.SizeBytes>>10, c.L1D.Ways, c.L1D.HitLatency)
	fmt.Fprintf(&b, "  L2                   %dKB %d-way, access %d\n", c.L2.SizeBytes>>10, c.L2.Ways, c.L2.HitLatency)
	fmt.Fprintf(&b, "  memory               fixed delay %d\n", c.MemLatency)
	fmt.Fprintf(&b, "  iTLB/dTLB            %d/%d entries\n", c.ITLBEntries, c.DTLBEntries)
	return b.String()
}
