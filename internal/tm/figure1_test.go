package tm

import (
	"testing"

	"repro/internal/fm"
	"repro/internal/isa"
	"repro/internal/trace"
)

// commitRecorder captures the TM→FM commit stream.
type commitRecorder struct {
	NopControl
	commits []uint64
}

func (c *commitRecorder) Commit(in uint64) { c.commits = append(c.commits, in) }

// TestFigure1Walkthrough replays the paper's Figure 1 example: a
// single-issue target with three functional units (ALU, Load/Store-DCache,
// Branch) processing the six-instruction dependent/independent mix. The
// properties the figure illustrates must hold:
//
//   - instructions commit strictly in order (the ROB's job),
//   - the independent ALU instruction (I4) does not wait behind the
//     dependent load chain (out-of-order issue): total cycles are below a
//     fully serialized schedule,
//   - trace-buffer entries are only deallocated at commit.
func TestFigure1Walkthrough(t *testing.T) {
	// 1: R0 = MEM[R1]   2: R0 = MEM[R0]   3: R0 = R0 + R3
	// 4: R4 = R5 + R6   5: R1 = MEM[R0]   6: R6 = R7 + R8
	// (FISA is two-operand, so the adds move first — the dependence shape
	// is the figure's.)
	m := fm.New(fm.Config{MemBytes: 1 << 20, DisableInterrupts: true})
	m.LoadProgram(isa.MustAssemble(`
		movi r1, 0x4000
		movi r3, 7
		movi r5, 5
		movi r6, 6
		movi r7, 70
		movi r8, 80
		movi r9, 0x4100
		stw  r9, [r1]     ; MEM[R1] points at 0x4100
		movi r10, 0x4200
		stw  r10, [r9]    ; MEM[0x4100] points at 0x4200
	figure1:
		ldw  r0, [r1]     ; I1
		ldw  r0, [r0]     ; I2 (depends on I1)
		add  r0, r3       ; I3 (depends on I2)
		mov  r4, r5
		add  r4, r6       ; I4 (independent)
		ldw  r1, [r0]     ; I5 (depends on I3)
		mov  r6, r7
		add  r6, r8       ; I6 (independent)
		cli
		halt
	`, 0x1000))
	var entries []trace.Entry
	for {
		e, ok := m.Step()
		if !ok {
			break
		}
		entries = append(entries, e)
	}

	cfg := DefaultConfig().WithIssueWidth(1)
	cfg.BranchUnits = 1
	cfg.ALUs = 1
	cfg.LoadStoreUnits = 1
	cfg.Predictor = "perfect"
	rec := &commitRecorder{}
	model, err := New(cfg, &SliceSource{Entries: entries}, rec)
	if err != nil {
		t.Fatal(err)
	}
	model.Run(1 << 20)

	if model.Stats.Instructions != uint64(len(entries)) {
		t.Fatalf("committed %d of %d instructions", model.Stats.Instructions, len(entries))
	}
	// In-order commit.
	for i, in := range rec.commits {
		if in != uint64(i) {
			t.Fatalf("commit %d out of order: IN %d", i, in)
		}
	}
	// Out-of-order issue wins: the same machine restricted to one µop in
	// flight (ROB/RS/LSQ of one) is a fully serialized schedule; the
	// figure's point is that the windowed machine overlaps the
	// independent instructions with the dependent load chain.
	serialCfg := cfg
	serialCfg.ROBEntries, serialCfg.RSEntries, serialCfg.LSQEntries = 1, 1, 1
	serialModel, err := New(serialCfg, &SliceSource{Entries: entries}, nil)
	if err != nil {
		t.Fatal(err)
	}
	serialModel.Run(1 << 20)
	if model.Stats.Cycles >= serialModel.Stats.Cycles {
		t.Errorf("no overlap: %d cycles with a window vs %d serialized",
			model.Stats.Cycles, serialModel.Stats.Cycles)
	}
	if model.Stats.UOps <= model.Stats.Instructions {
		t.Error("loads must crack into multiple µops")
	}
}
