package tm

import "repro/internal/trace"

// SliceSource replays a pre-recorded functional-path trace (the standalone
// "soft timing model" mode and the unit tests use it). Because the trace is
// already the architecturally correct path, re-steering is unnecessary:
// pair it with NopControl.
type SliceSource struct {
	Entries []trace.Entry
}

// Fetch implements Source.
func (s *SliceSource) Fetch(in uint64) (trace.Entry, FetchStatus) {
	if in >= uint64(len(s.Entries)) {
		return trace.Entry{}, FetchEnd
	}
	return s.Entries[in], FetchOK
}

// FetchChunk implements ChunkSource: the whole remaining trace is one view,
// so replay pays a single bounds check per run instead of one per entry.
func (s *SliceSource) FetchChunk(in uint64) ([]trace.Entry, FetchStatus) {
	if in >= uint64(len(s.Entries)) {
		return nil, FetchEnd
	}
	return s.Entries[in:], FetchOK
}
