package tm

// Warm-start serialization of the timing model. A TM snapshot is legal
// only at a quiescent boundary (Quiescent below): the pipeline is empty —
// ROB, front-end connectors, decode buffer, pending branch/miss lists all
// drained, no recovery in flight. At that point the only state that must
// survive is the target clock, the fetch frontier, the predictor and
// memory-hierarchy structures, the return-address stack, the LSU port
// reservations and the cumulative counters; everything in-flight is
// structurally empty and a freshly built TM already starts that way.
//
// The shared multicore hierarchy (cfg.Shared) is owned by the container,
// which serializes the Coherent directory once; a private-hierarchy TM
// carries its own L2 and memory counters. The blob records which shape it
// was taken from and refuses to restore onto the other.

import (
	"repro/internal/snap"

	"repro/internal/bpred"
	"repro/internal/isa"
)

const tmStateV = 1

// Quiescent reports whether the pipeline is fully drained: nothing
// in-flight anywhere, no mispredict recovery pending, and the trace not
// yet ended. Only in this state is SaveState's pipeline-free encoding
// faithful. The unresolved counter is not required to be zero — it is a
// drifting accounting value that gates the nested-branch fetch limit, so
// it is serialized as-is rather than assumed drained.
func (t *TM) Quiescent() bool {
	return !t.ended && t.Drained()
}

// Drained reports the pipeline-empty predicates alone, without the
// not-ended requirement: a terminal core of a multicore target keeps an
// ended-but-drained TM, which is still snapshottable (the ended flag is
// part of the encoding).
func (t *TM) Drained() bool {
	return len(t.rob) == 0 &&
		t.fetchQ.Len() == 0 &&
		t.uopQ.Len() == 0 &&
		len(t.decodeBuf) == 0 &&
		len(t.pendingBranches) == 0 &&
		len(t.pendingMisses) == 0 &&
		!t.recovering
}

// saveState appends the connector's rate-limiter clocks and counters. The
// transaction queue must be empty (quiescence); the count is encoded so a
// blob captured otherwise fails decode.
func (c *Connector[T]) saveState(w *snap.Writer) {
	w.U32(uint32(len(c.items)))
	w.U64(c.putCycle)
	w.U32(uint32(c.putsThis))
	w.U64(c.getCycle)
	w.U32(uint32(c.getsThis))
	w.U64(c.stats.Puts)
	w.U64(c.stats.Gets)
	w.U64(c.stats.PutStalls)
	w.U64(c.stats.GetStalls)
	w.U64(c.stats.OccupancySum)
}

func (c *Connector[T]) loadState(r *snap.Reader) error {
	if n := r.U32(); r.Err() == nil && n != 0 {
		return snap.Corruptf("connector %s: %d in-flight items in snapshot", c.name, n)
	}
	putCycle, putsThis := r.U64(), r.U32()
	getCycle, getsThis := r.U64(), r.U32()
	var st ConnectorStats
	st.Puts, st.Gets = r.U64(), r.U64()
	st.PutStalls, st.GetStalls, st.OccupancySum = r.U64(), r.U64(), r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	c.items = c.items[:0]
	c.putCycle, c.putsThis = putCycle, int(putsThis)
	c.getCycle, c.getsThis = getCycle, int(getsThis)
	c.stats = st
	return nil
}

// SaveState appends the timing model's versioned binary state. It must be
// called only when Quiescent().
func (t *TM) SaveState(w *snap.Writer) {
	w.U8(tmStateV)

	// Target clock and fetch frontier. ended distinguishes a live core's
	// boundary from a terminal core that has consumed FetchEnd: restoring
	// it keeps the scheduler skipping the core instead of re-draining it
	// (which would re-advance its cycle counters and break bit-identity).
	w.Bool(t.ended)
	w.U64(t.cycle)
	w.U64(t.fetchIN)
	w.U64(t.refillUntil)
	w.U64(t.icacheStallUntil)

	// Return-address stack and the nested-branch gate counter.
	for _, v := range t.ras {
		w.U32(v)
	}
	w.I64(int64(t.rasTop))
	w.I64(int64(t.unresolved))

	// LSU port reservations (absolute cycles; may be in the future even
	// with an empty ROB — a just-committed memory op holds its port).
	w.U64Slice(t.lsuFreeAt)

	// Front-end connectors.
	t.fetchQ.saveState(w)
	t.uopQ.saveState(w)

	// Predictor and accuracy counters.
	bpred.SaveState(w, t.BP)
	bpred.SaveStats(w, t.BPStats)

	// Memory hierarchy. Private L1s and TLB timing structures always;
	// L2/DRAM only when privately owned.
	t.IL1.SaveState(w)
	t.DL1.SaveState(w)
	t.ITLB.SaveState(w)
	t.DTLB.SaveState(w)
	shared := t.cfg.Shared != nil
	w.Bool(!shared)
	if !shared {
		t.L2.SaveState(w)
		t.Memory.SaveState(w)
	}

	// Cumulative counters.
	w.U64(t.Stats.Cycles)
	w.U64(t.Stats.Instructions)
	w.U64(t.Stats.UOps)
	w.U64(t.Stats.BasicBlocks)
	w.U64(t.Stats.DrainCycles)
	w.U64(t.Stats.FetchBubbles)
	w.U64(t.Stats.ICacheStalls)
	w.U64(t.Stats.Mispredicts)
	w.U64(t.Stats.Exceptions)
	w.U64(t.Stats.Serializes)
	w.U64(t.Stats.RSFullStalls)
	w.U64(t.Stats.ROBFullStalls)
	w.U64(t.Stats.LSQFullStalls)
	w.U32(uint32(len(t.Stats.IssuedByClass)))
	for _, v := range t.Stats.IssuedByClass {
		w.U64(v)
	}

	// Host-model accumulator.
	w.U64(t.host.total)
}

// LoadState decodes state written by SaveState onto a freshly built TM of
// identical configuration. In-flight pipeline structures are left in their
// freshly-built empty state — the encoding guarantees the capture was
// quiescent.
func (t *TM) LoadState(r *snap.Reader) error {
	if v := r.U8(); r.Err() == nil && v != tmStateV {
		return snap.Corruptf("tm state version %d, want %d", v, tmStateV)
	}

	ended := r.Bool()
	cycle, fetchIN := r.U64(), r.U64()
	refillUntil, icacheStallUntil := r.U64(), r.U64()

	var ras [8]isa.Word
	for i := range ras {
		ras[i] = r.U32()
	}
	rasTop := r.I64()
	unresolved := r.I64()

	lsuFreeAt := r.U64Slice()
	if r.Err() == nil && len(lsuFreeAt) != len(t.lsuFreeAt) {
		return snap.Corruptf("tm: %d LSU ports, want %d", len(lsuFreeAt), len(t.lsuFreeAt))
	}

	if err := t.fetchQ.loadState(r); err != nil {
		return err
	}
	if err := t.uopQ.loadState(r); err != nil {
		return err
	}

	if err := bpred.LoadState(r, t.BP); err != nil {
		return err
	}
	bpStats := bpred.LoadStats(r)

	if err := t.IL1.LoadState(r); err != nil {
		return err
	}
	if err := t.DL1.LoadState(r); err != nil {
		return err
	}
	if err := t.ITLB.LoadState(r); err != nil {
		return err
	}
	if err := t.DTLB.LoadState(r); err != nil {
		return err
	}
	private := r.Bool()
	if r.Err() == nil && private != (t.cfg.Shared == nil) {
		return snap.Corruptf("tm: hierarchy ownership mismatch (blob private=%v)", private)
	}
	if private {
		if err := t.L2.LoadState(r); err != nil {
			return err
		}
		if err := t.Memory.LoadState(r); err != nil {
			return err
		}
	}

	var st Stats
	st.Cycles, st.Instructions, st.UOps = r.U64(), r.U64(), r.U64()
	st.BasicBlocks, st.DrainCycles, st.FetchBubbles = r.U64(), r.U64(), r.U64()
	st.ICacheStalls, st.Mispredicts, st.Exceptions = r.U64(), r.U64(), r.U64()
	st.Serializes, st.RSFullStalls, st.ROBFullStalls = r.U64(), r.U64(), r.U64()
	st.LSQFullStalls = r.U64()
	if n := r.U32(); r.Err() == nil && int(n) != len(st.IssuedByClass) {
		return snap.Corruptf("tm: %d issue classes, want %d", n, len(st.IssuedByClass))
	}
	for i := range st.IssuedByClass {
		st.IssuedByClass[i] = r.U64()
	}
	hostTotal := r.U64()
	if err := r.Err(); err != nil {
		return err
	}

	// Decode complete: apply.
	t.cycle, t.fetchIN = cycle, fetchIN
	t.refillUntil, t.icacheStallUntil = refillUntil, icacheStallUntil
	t.ras, t.rasTop = ras, int(rasTop)
	t.unresolved = int(unresolved)
	copy(t.lsuFreeAt, lsuFreeAt)
	t.BPStats = bpStats
	t.Stats = st
	t.host.total = hostTotal
	t.ended = ended
	t.recovering, t.recoverIN = false, 0
	t.dropView()
	t.viewBase = 0
	return nil
}
