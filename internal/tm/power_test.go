package tm

import "testing"

func TestPowerModelAccumulates(t *testing.T) {
	entries := record(t, loopSrc, 10000)
	model, err := New(DefaultConfig(), &SliceSource{Entries: entries}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := model.AttachPower(DefaultPowerWeights())
	for !model.Done() {
		model.Step()
		if model.Cycle()%64 == 0 {
			p.Sample()
		}
	}
	p.Sample()
	if p.Energy <= 0 || p.Leakage <= 0 {
		t.Fatalf("no energy accumulated: %+v", p)
	}
	if p.AveragePower() <= 0 || p.EnergyPerInstruction() <= 0 {
		t.Error("derived metrics zero")
	}
	if p.Report() == "" {
		t.Error("empty report")
	}
}

// TestPowerRelativeComparisons: the §6 goal is *relative* estimates that
// "permit architects to compare different architectures": an FP-heavy
// instruction mix must cost more energy per instruction than a plain ALU
// mix, and a wider machine must burn more average power on parallel code.
func TestPowerRelativeComparisons(t *testing.T) {
	run := func(src string, cfg Config) *PowerModel {
		entries := record(t, src, 100000)
		model, err := New(cfg, &SliceSource{Entries: entries}, nil)
		if err != nil {
			t.Fatal(err)
		}
		p := model.AttachPower(DefaultPowerWeights())
		for !model.Done() {
			model.Step()
		}
		p.Sample()
		return p
	}
	aluSrc := `
		movi r0, 2000
	loop:	addi r1, 1
		xori r1, 3
		dec  r0
		jnz  loop
		halt
	`
	memSrc := `
		movi r0, 2000
	loop:	stw  r1, [r2+0x4000]
		ldw  r3, [r2+0x4000]
		dec  r0
		jnz  loop
		halt
	`
	cfg := DefaultConfig()
	cfg.Predictor = "perfect"
	alu := run(aluSrc, cfg)
	mem := run(memSrc, cfg)
	if mem.EnergyPerInstruction() <= alu.EnergyPerInstruction() {
		t.Errorf("memory mix %.3f energy/inst not above ALU mix %.3f",
			mem.EnergyPerInstruction(), alu.EnergyPerInstruction())
	}
	wide := run(aluSrc, func() Config { c := DefaultConfig().WithIssueWidth(4); c.Predictor = "perfect"; return c }())
	if wide.AveragePower() <= alu.AveragePower() {
		t.Errorf("4-issue average power %.3f not above 2-issue %.3f",
			wide.AveragePower(), alu.AveragePower())
	}
	// Total energy for the same work should be comparable (same activity),
	// so the win is performance, not energy — a real architect insight the
	// relative model can support.
	ratio := wide.Total() / alu.Total()
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("same-work energy ratio %.2f implausible", ratio)
	}
}
