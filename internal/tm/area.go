package tm

import (
	"fmt"

	"repro/internal/fpga"
	"repro/internal/isa"
)

// ModuleArea is one row of the area breakdown.
type ModuleArea struct {
	Name string
	Area fpga.Area
}

// AreaBreakdown estimates the FPGA footprint of every timing-model module,
// in the spirit of Table 2. The estimates follow §3.3's discipline: all
// capacity lives in dual-ported block RAMs cycled over multiple host cycles,
// so footprints depend on structure sizes (ROB entries, cache bytes, BTB
// entries) and NOT on issue width — which is why Table 2 is flat from
// 1-issue to 8-issue.
//
// Constants are calibrated against §4.7's reported totals for the default
// configuration (32.8% of an LX200's slices, 50-51% of its block RAMs,
// "Connectors ... under-optimized regarding area, especially in the block
// RAMs", a statistics fabric that consumed "significant global routing
// resources").
func (c Config) AreaBreakdown() []ModuleArea {
	cacheFoot := func(sizeBytes, ways, lineBytes int) fpga.Area {
		lines := sizeBytes / lineBytes
		data := fpga.BlockRAM(sizeBytes*8, 2)
		tags := fpga.BlockRAM(lines*22, 2)
		meta := fpga.BlockRAM(lines*4, 2)
		return data.Add(tags).Add(meta).Add(fpga.Area{Slices: 450}).Add(fpga.Arbiter(ways))
	}

	// Branch predictor: 8K-entry PHT of 2-bit counters plus the 4-way 8K
	// BTB holding partial tags and targets (12 bits/entry, a standard
	// space trick).
	pht := fpga.BlockRAM(8192*2, 2)
	btb := fpga.BlockRAM(8192*12, 2)
	bp := pht.Add(btb).Add(fpga.Area{Slices: 600})

	// Microcode table: every opcode's µop template (~4 µops × 36 bits),
	// read one µop per host cycle during decode.
	ucodeBits := isa.NumOpcodes * 4 * 36
	ucode := fpga.BlockRAM(ucodeBits, 2).Add(fpga.Area{Slices: 800})

	rob := fpga.BlockRAM(c.ROBEntries*96, 3*c.IssueWidth).
		Add(fpga.Registers(2 * 16)).Add(fpga.Area{Slices: 900})
	rename := fpga.BlockRAM(64*8, 3*c.IssueWidth).Add(fpga.Area{Slices: 400})
	rs := fpga.CAM(c.RSEntries, 8).Add(fpga.CAM(c.RSEntries, 8)).
		Add(fpga.BlockRAM(c.RSEntries*80, 2)).
		Add(fpga.Arbiter(c.RSEntries)).Add(fpga.Area{Slices: 700})
	lsq := fpga.CAM(c.LSQEntries, 32).
		Add(fpga.BlockRAM(c.LSQEntries*72, 2)).Add(fpga.Area{Slices: 500})

	// Functional-unit timing stubs: no datapath, just occupancy state.
	fus := fpga.Area{Slices: 60 * (c.ALUs + c.BranchUnits + c.LoadStoreUnits + c.FPUs)}

	itlb := fpga.CAM(c.ITLBEntries, 20).Add(fpga.Area{Slices: 150})
	dtlb := fpga.CAM(c.DTLBEntries, 20).Add(fpga.Area{Slices: 150})

	// Connectors: two deep front-end FIFOs land in BRAM (the §4.7
	// under-optimization), the rest in fabric.
	connectors := fpga.FIFO(64, 128).Add(fpga.FIFO(64, 96)).
		Add(fpga.Area{Slices: 6 * 120})

	// Statistics: the temporary per-Module metric fabric of §4.7 that
	// "required significant global routing resources".
	stats := fpga.Area{Slices: 7400}
	// Host-link interface (HyperTransport endpoint + trace unpacking).
	link := fpga.Area{Slices: 1600, BRAMs: 2}
	// Top-level glue, clocking, compiler overhead.
	glue := fpga.Area{Slices: 10200}

	return []ModuleArea{
		{"Fetch+BP", bp.Add(fpga.Area{Slices: 900})},
		{"iTLB", itlb},
		{"dTLB", dtlb},
		{"iL1", cacheFoot(c.L1I.SizeBytes, c.L1I.Ways, c.L1I.LineBytes)},
		{"dL1", cacheFoot(c.L1D.SizeBytes, c.L1D.Ways, c.L1D.LineBytes)},
		{"L2", cacheFoot(c.L2.SizeBytes, c.L2.Ways, c.L2.LineBytes)},
		{"Decode+µcode", ucode},
		{"Rename/ROB", rob.Add(rename)},
		{"ReservationStations", rs},
		{"LoadStoreQueue", lsq},
		{"FunctionalUnits", fus},
		{"Connectors", connectors},
		{"Statistics", stats},
		{"HostLink", link},
		{"TopLevel", glue},
	}
}

// Area returns the total footprint of the configured timing model.
func (c Config) Area() fpga.Area {
	var a fpga.Area
	for _, m := range c.AreaBreakdown() {
		a = a.Add(m.Area)
	}
	return a
}

// AreaReport renders Table 2's row for this configuration on a device.
func (c Config) AreaReport(d fpga.Device) string {
	a := c.Area()
	return fmt.Sprintf("issue=%d logic=%.2f%% brams=%.1f%% (%s on %s)",
		c.IssueWidth, 100*d.LogicFraction(a), 100*d.BRAMFraction(a), a, d.Name)
}
