// Package tm implements FAST's timing model: a cycle-accurate,
// host-cycle-accounted model of the Figure 3 out-of-order target, built
// from Modules wired by Connectors (§4), driven by the functional-path
// instruction trace.
package tm

import "fmt"

// Connector is the paper's inter-module coupling primitive [10]: a FIFO
// "that enforce[s] timing and throughput constraints. Connectors can be
// configured for input throughput, output throughput, minimum latency and
// maximum transactions", and gathers statistics. Reconfiguring Connector
// parameters is how a single-issue target becomes multi-issue (§4).
type Connector[T any] struct {
	name string
	cfg  ConnectorConfig

	items []connItem[T]

	// Per-cycle throughput bookkeeping.
	putCycle uint64
	putsThis int
	getCycle uint64
	getsThis int

	stats ConnectorStats
}

type connItem[T any] struct {
	v     T
	ready uint64 // first cycle the item may be taken
}

// ConnectorConfig are the four §4 parameters.
type ConnectorConfig struct {
	InputThroughput  int    // max puts per cycle
	OutputThroughput int    // max gets per cycle
	MinLatency       uint64 // cycles between put and earliest get
	MaxTransactions  int    // capacity
}

// ConnectorStats is the built-in statistics gathering (§4: Connectors
// "will also provide statistics gathering and logging capabilities").
type ConnectorStats struct {
	Puts         uint64
	Gets         uint64
	PutStalls    uint64 // puts refused (full or throughput)
	GetStalls    uint64 // gets refused (empty, latency or throughput)
	OccupancySum uint64 // summed at each put for average occupancy
}

// NewConnector builds a connector.
func NewConnector[T any](name string, cfg ConnectorConfig) *Connector[T] {
	if cfg.InputThroughput < 1 || cfg.OutputThroughput < 1 || cfg.MaxTransactions < 1 {
		panic(fmt.Sprintf("tm: connector %s: bad config %+v", name, cfg))
	}
	return &Connector[T]{name: name, cfg: cfg}
}

// Name returns the connector's instance name.
func (c *Connector[T]) Name() string { return c.name }

// Config returns the connector's parameters.
func (c *Connector[T]) Config() ConnectorConfig { return c.cfg }

// Stats returns accumulated statistics.
func (c *Connector[T]) Stats() ConnectorStats { return c.stats }

// Len returns current occupancy.
func (c *Connector[T]) Len() int { return len(c.items) }

// CanPut reports whether a Put at cycle would succeed.
func (c *Connector[T]) CanPut(cycle uint64) bool {
	if len(c.items) >= c.cfg.MaxTransactions {
		return false
	}
	return cycle != c.putCycle || c.putsThis < c.cfg.InputThroughput
}

// Put inserts v at cycle, honoring capacity and input throughput.
func (c *Connector[T]) Put(cycle uint64, v T) bool {
	if cycle != c.putCycle {
		c.putCycle, c.putsThis = cycle, 0
	}
	if len(c.items) >= c.cfg.MaxTransactions || c.putsThis >= c.cfg.InputThroughput {
		c.stats.PutStalls++
		return false
	}
	c.putsThis++
	c.stats.Puts++
	c.stats.OccupancySum += uint64(len(c.items))
	c.items = append(c.items, connItem[T]{v: v, ready: cycle + c.cfg.MinLatency})
	return true
}

// Peek returns the head item if one is gettable at cycle.
func (c *Connector[T]) Peek(cycle uint64) (T, bool) {
	var zero T
	if len(c.items) == 0 || c.items[0].ready > cycle {
		return zero, false
	}
	if cycle == c.getCycle && c.getsThis >= c.cfg.OutputThroughput {
		return zero, false
	}
	return c.items[0].v, true
}

// Get removes and returns the head item, honoring latency and output
// throughput.
func (c *Connector[T]) Get(cycle uint64) (T, bool) {
	var zero T
	if cycle != c.getCycle {
		c.getCycle, c.getsThis = cycle, 0
	}
	if len(c.items) == 0 || c.items[0].ready > cycle || c.getsThis >= c.cfg.OutputThroughput {
		c.stats.GetStalls++
		return zero, false
	}
	v := c.items[0].v
	copy(c.items, c.items[1:])
	c.items = c.items[:len(c.items)-1]
	c.getsThis++
	c.stats.Gets++
	return v, true
}

// Flush discards all in-flight items (pipeline flush on recovery).
func (c *Connector[T]) Flush() { c.items = c.items[:0] }
