package tm

import (
	"fmt"
	"strconv"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/fullsys"
	"repro/internal/isa"
	"repro/internal/microcode"
	"repro/internal/obs"
	"repro/internal/trace"
)

// FetchStatus is the result of asking the trace source for an instruction.
type FetchStatus int

const (
	// FetchOK delivered an entry.
	FetchOK FetchStatus = iota
	// FetchWait means the functional model has not produced the entry yet
	// (or the target is halted): the timing model sees a fetch bubble.
	FetchWait
	// FetchEnd means the stream is over.
	FetchEnd
)

// Source supplies functional-path trace entries by instruction number.
// After a re-steer, re-fetching an IN returns the replacement entry.
type Source interface {
	Fetch(in uint64) (trace.Entry, FetchStatus)
}

// ChunkSource is an optional Source extension that hands the TM a run of
// consecutive entries starting at in with one call — the consumer half of
// the chunked coupling. The returned slice is a view the TM may read until
// it issues a re-steer (Mispredict/Resolve), which invalidates it; the
// source must not mutate a returned view before the next FetchChunk call.
// A source that returns (nil, FetchOK) forces a per-entry fetch instead.
type ChunkSource interface {
	Source
	FetchChunk(in uint64) ([]trace.Entry, FetchStatus)
}

// Control is the TM→FM command channel: commits release rollback resources;
// Mispredict/Resolve implement §2.1's path re-steering.
type Control interface {
	// Commit tells the FM instruction in is fully committed.
	Commit(in uint64)
	// Mispredict asks the FM to produce wrong-path instructions starting
	// at instruction number in, fetching from wrongPC.
	Mispredict(in uint64, wrongPC isa.Word)
	// Resolve asks the FM to return to the right path at in.
	Resolve(in uint64, rightPC isa.Word)
}

// NopControl is the replay-mode control: the trace is already the right
// path and nothing is coupled behind it.
type NopControl struct{}

// Commit implements Control.
func (NopControl) Commit(uint64) {}

// Mispredict implements Control.
func (NopControl) Mispredict(uint64, isa.Word) {}

// Resolve implements Control.
func (NopControl) Resolve(uint64, isa.Word) {}

// instr is one in-flight instruction.
type instr struct {
	e            trace.Entry
	mispredicted bool
	serialize    bool // exception/interrupt: fetch stalls until it commits
	uopsLeft     int
}

// uop is one in-flight micro-operation.
type uop struct {
	ins      *instr
	idx      int
	last     bool
	kind     microcode.UKind
	class    isa.Class
	dst      microcode.MReg
	srcA     microcode.MReg
	srcB     microcode.MReg
	readsCC  bool
	writesCC bool
	deps     [3]*uop

	dispatched bool
	issued     bool
	done       bool
	doneCycle  uint64
	isMem      bool
	resolved   bool // branch µop: resolution handled
}

// Stats aggregates the timing model's counters. The JSON tags are a stable
// serialization schema shared by `fastsim -json` and the obs exporters.
type Stats struct {
	Cycles        uint64 `json:"cycles"`
	Instructions  uint64 `json:"instructions"`
	UOps          uint64 `json:"uops"`
	BasicBlocks   uint64 `json:"basic_blocks"`  // committed control transfers
	DrainCycles   uint64 `json:"drain_cycles"`  // fetch stalled by mispredict recovery (Fig. 6)
	FetchBubbles  uint64 `json:"fetch_bubbles"` // fetch stalled because the FM had nothing for us
	ICacheStalls  uint64 `json:"icache_stalls"`
	Mispredicts   uint64 `json:"mispredicts"`
	Exceptions    uint64 `json:"exceptions"`
	Serializes    uint64 `json:"serializes"`
	RSFullStalls  uint64 `json:"rs_full_stalls"`
	ROBFullStalls uint64 `json:"rob_full_stalls"`
	LSQFullStalls uint64 `json:"lsq_full_stalls"`

	// Per-class issue counts (the "active functional units" query of §3).
	IssuedByClass [isa.NumClasses]uint64 `json:"issued_by_class"`
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// TM is the cycle-accurate timing model.
type TM struct {
	cfg Config
	src Source
	ctl Control

	// Chunked consumption: when src implements ChunkSource, fetch reads
	// from view (a run of entries starting at IN viewBase) and refills it
	// with one FetchChunk per chunk instead of one Source.Fetch per
	// instruction. A re-steer invalidates the view: the entries past the
	// re-steered IN are wrong-path and will be overwritten (Figure 2).
	chunkSrc ChunkSource
	view     []trace.Entry
	viewBase uint64

	BP      bpred.Predictor
	BPStats bpred.Stats
	IL1     *cache.Cache
	DL1     *cache.Cache
	L2      *cache.Cache
	Memory  *cache.FixedMemory
	ITLB    *cache.TLBTiming
	DTLB    *cache.TLBTiming

	table *microcode.Table

	cycle   uint64
	fetchIN uint64
	ended   bool

	// Front-end connectors: Fetch→Decode and Decode→Rename. Their
	// MinLatency values realize the front-end pipeline depth.
	fetchQ *Connector[*instr]
	uopQ   *Connector[*uop]

	decodeBuf []*uop // µops of the instruction currently being decoded

	rob       []*uop
	rsCount   int
	lsqCount  int
	regWriter map[microcode.MReg]*uop
	ccWriter  *uop

	lsuFreeAt []uint64

	pendingBranches []*uop
	pendingMisses   []*uop // outstanding non-blocking cache misses (MSHRs)

	// Recovery state: a mispredicted branch or serializing instruction is
	// in flight; fetch resumes FrontEndDepth cycles after it commits.
	recovering       bool
	recoverIN        uint64
	refillUntil      uint64
	icacheStallUntil uint64

	unresolved int // in-flight predicted branches (nested-branch limit)

	// ras is the front end's return-address stack: calls push their
	// fall-through PC, returns predict from the top. Without it every
	// subroutine returning to more than one site mispredicts its target.
	ras    [8]isa.Word
	rasTop int

	Stats Stats
	host  hostModel

	// Probe, when set, observes every target cycle (cycle number, µops
	// issued that cycle). It models dedicated statistics hardware: it
	// sees everything and costs the simulation nothing (§3, §4.6).
	Probe func(cycle uint64, issued int)
}

// New builds a timing model over the given trace source and control
// channel.
func New(cfg Config, src Source, ctl Control) (*TM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bp, err := bpred.New(cfg.Predictor)
	if err != nil {
		return nil, err
	}
	if ctl == nil {
		ctl = NopControl{}
	}
	var (
		mem  *cache.FixedMemory
		l2   *cache.Cache
		next cache.Level
	)
	if cfg.Shared != nil {
		mem, l2 = cfg.Shared.Memory(), cfg.Shared.L2()
		next = cfg.Shared.Port(cfg.CoreID)
	} else {
		mem = cache.NewFixedMemory(cfg.MemLatency)
		l2 = cache.New(cfg.L2, mem)
		next = l2
	}
	t := &TM{
		cfg:       cfg,
		src:       src,
		ctl:       ctl,
		BP:        bp,
		IL1:       cache.New(cfg.L1I, next),
		DL1:       cache.New(cfg.L1D, next),
		L2:        l2,
		Memory:    mem,
		ITLB:      cache.NewTLBTiming(cfg.ITLBEntries),
		DTLB:      cache.NewTLBTiming(cfg.DTLBEntries),
		table:     microcode.NewTable(),
		regWriter: make(map[microcode.MReg]*uop),
		lsuFreeAt: make([]uint64, cfg.LoadStoreUnits),
		fetchQ: NewConnector[*instr]("fetch→decode", ConnectorConfig{
			InputThroughput:  cfg.IssueWidth,
			OutputThroughput: cfg.IssueWidth,
			MinLatency:       uint64(cfg.FrontEndDepth) / 2,
			MaxTransactions:  4 * cfg.IssueWidth,
		}),
		uopQ: NewConnector[*uop]("decode→rename", ConnectorConfig{
			InputThroughput:  cfg.IssueWidth,
			OutputThroughput: cfg.IssueWidth,
			MinLatency:       uint64((cfg.FrontEndDepth + 1) / 2),
			MaxTransactions:  4 * cfg.IssueWidth,
		}),
	}
	if cfg.Shared != nil {
		// Register the private caches with the directory so remote write
		// transitions back-invalidate this core's copies.
		cfg.Shared.AttachL1(cfg.CoreID, t.IL1, t.DL1)
	}
	if cs, ok := src.(ChunkSource); ok {
		t.chunkSrc = cs
	}
	t.host.init(cfg)
	return t, nil
}

// fetchEntry returns the entry for in, serving from the chunk view when the
// source supports chunked fetches. On a view miss it pulls the next run of
// live entries with one synchronized call; consecutive fetch-group slots
// then hit the view for free.
func (t *TM) fetchEntry(in uint64) (trace.Entry, FetchStatus) {
	if t.chunkSrc == nil {
		return t.src.Fetch(in)
	}
	if off := in - t.viewBase; in >= t.viewBase && off < uint64(len(t.view)) {
		return t.view[off], FetchOK
	}
	es, st := t.chunkSrc.FetchChunk(in)
	if st != FetchOK || len(es) == 0 {
		if st == FetchOK {
			return t.src.Fetch(in)
		}
		return trace.Entry{}, st
	}
	t.view, t.viewBase = es, in
	return es[0], FetchOK
}

// dropView discards the chunk view. Called when the TM re-steers the FM:
// entries past the re-steered IN are about to be overwritten, so any cached
// copies are stale.
func (t *TM) dropView() { t.view = nil }

// Config returns the target configuration.
func (t *TM) Config() Config { return t.cfg }

// Cycle returns the current target cycle.
func (t *TM) Cycle() uint64 { return t.cycle }

// HostCycles returns the host (FPGA) cycles consumed so far.
func (t *TM) HostCycles() uint64 { return t.host.total }

// NextFetchIN returns the next instruction number fetch will request.
func (t *TM) NextFetchIN() uint64 { return t.fetchIN }

// Done reports whether the stream ended and the pipeline fully drained.
func (t *TM) Done() bool {
	return t.ended && len(t.rob) == 0 && t.fetchQ.Len() == 0 && t.uopQ.Len() == 0 && len(t.decodeBuf) == 0
}

// Run advances the model until Done or maxCycles elapses; it returns the
// number of cycles executed.
func (t *TM) Run(maxCycles uint64) uint64 {
	start := t.cycle
	for !t.Done() && t.cycle-start < maxCycles {
		t.Step()
	}
	return t.cycle - start
}

// Step evaluates one target cycle: commit → resolve → issue → dispatch →
// decode → fetch (reverse pipeline order, so a value produced this cycle is
// consumed next cycle).
func (t *TM) Step() {
	w := workCounts{}
	t.commit(&w)
	t.resolveBranches()
	t.issue(&w)
	t.dispatch(&w)
	t.decode(&w)
	t.fetch(&w)
	t.host.account(w)
	if t.Probe != nil {
		t.Probe(t.cycle, w.issued)
	}
	t.Stats.Cycles++
	t.cycle++
}

// commit retires completed µops in order, up to IssueWidth per cycle.
func (t *TM) commit(w *workCounts) {
	n := 0
	for n < t.cfg.IssueWidth && len(t.rob) > 0 {
		u := t.rob[0]
		if !u.done || u.doneCycle > t.cycle {
			break
		}
		t.rob = t.rob[1:]
		if u.isMem {
			t.lsqCount--
		}
		n++
		t.Stats.UOps++
		u.ins.uopsLeft--
		if u.last {
			t.Stats.Instructions++
			e := u.ins.e
			if e.Branch {
				t.Stats.BasicBlocks++
			}
			t.ctl.Commit(e.IN)
			if t.recovering && t.recoverIN == e.IN {
				// The mispredicted/serializing instruction has committed:
				// the pipeline has flushed through the ROB (§4.1) and the
				// front end refills.
				t.recovering = false
				t.refillUntil = t.cycle + uint64(t.cfg.FrontEndDepth)
			}
		}
	}
	w.committed = n
}

// resolveBranches processes branch µops whose execution completed: train
// the predictor and, on a misprediction, re-steer the FM to the right path.
func (t *TM) resolveBranches() {
	keep := t.pendingBranches[:0]
	for _, u := range t.pendingBranches {
		if !u.done || u.doneCycle > t.cycle {
			keep = append(keep, u)
			continue
		}
		e := u.ins.e
		t.BP.Update(e.PC, e.Taken, e.NextPC)
		t.unresolved--
		u.resolved = true
		if u.ins.mispredicted {
			t.dropView()
			t.ctl.Resolve(e.IN+1, e.NextPC)
			if t.cfg.FastRecovery && t.recovering && t.recoverIN == e.IN {
				// §4.1 fix: resume fetch at resolution instead of waiting
				// for the branch to flush through the ROB.
				t.recovering = false
				t.refillUntil = t.cycle + uint64(t.cfg.FrontEndDepth)
			}
		}
	}
	t.pendingBranches = keep
	// Retire completed misses from the MSHRs.
	misses := t.pendingMisses[:0]
	for _, u := range t.pendingMisses {
		if !u.done || u.doneCycle > t.cycle {
			misses = append(misses, u)
		}
	}
	t.pendingMisses = misses
}

// latency returns the execution latency of a non-memory µop.
func (t *TM) latency(u *uop) uint64 {
	switch u.class {
	case isa.ClassBranch:
		return uint64(t.cfg.BranchLatency)
	case isa.ClassFPU:
		return uint64(t.cfg.FPULatency)
	default:
		return uint64(t.cfg.ALULatency)
	}
}

// depsReady reports whether all of u's producers have completed.
func depsReady(u *uop, cycle uint64) bool {
	for _, d := range u.deps {
		if d != nil && (!d.done || d.doneCycle > cycle) {
			return false
		}
	}
	return true
}

// issue selects ready µops oldest-first and sends them to functional units.
func (t *TM) issue(w *workCounts) {
	aluLeft := t.cfg.ALUs
	bruLeft := t.cfg.BranchUnits
	fpuLeft := t.cfg.FPUs
	memIssued := false
	for _, u := range t.rob {
		if !u.dispatched || u.issued {
			if u.isMem && !u.issued && u.dispatched {
				// In-order memory issue (blocking caches): a younger
				// memory µop cannot bypass this one.
				memIssued = true
			}
			continue
		}
		if u.isMem {
			if memIssued {
				continue
			}
			memIssued = true // whether or not it issues, younger mem µops wait
			if !depsReady(u, t.cycle) {
				continue
			}
			lsu := -1
			for i, freeAt := range t.lsuFreeAt {
				if freeAt <= t.cycle {
					lsu = i
					break
				}
			}
			if lsu < 0 {
				continue
			}
			if t.cfg.MSHRs > 0 && len(t.pendingMisses) >= t.cfg.MSHRs {
				continue // all miss-status registers busy
			}
			lat := t.memLatency(u)
			if t.cfg.MSHRs > 0 {
				// Non-blocking cache (§4.1 fix): the LSU frees after the
				// issue cycle; the miss rides an MSHR.
				t.lsuFreeAt[lsu] = t.cycle + 1
				if lat > uint64(t.cfg.L1D.HitLatency)+1 {
					t.pendingMisses = append(t.pendingMisses, u)
				}
			} else {
				t.lsuFreeAt[lsu] = t.cycle + lat // blocking LSU
			}
			t.issueUop(u, lat, w)
			continue
		}
		if !depsReady(u, t.cycle) {
			continue
		}
		switch u.class {
		case isa.ClassBranch:
			if bruLeft == 0 {
				continue
			}
			bruLeft--
		case isa.ClassFPU:
			if fpuLeft == 0 {
				continue
			}
			fpuLeft--
		default:
			if aluLeft == 0 {
				continue
			}
			aluLeft--
		}
		t.issueUop(u, t.latency(u), w)
	}
}

func (t *TM) issueUop(u *uop, lat uint64, w *workCounts) {
	u.issued = true
	u.done = true
	u.doneCycle = t.cycle + lat
	t.rsCount--
	t.Stats.IssuedByClass[u.class]++
	w.issued++
	if u.isMem {
		w.memIssued = true
	}
	if u.kind == microcode.UBr {
		t.pendingBranches = append(t.pendingBranches, u)
	}
}

// memLatency models the data-side access: dTLB, then the blocking dL1/L2/
// memory hierarchy.
func (t *TM) memLatency(u *uop) uint64 {
	e := u.ins.e
	lat := uint64(1) // address to the LSU
	if e.MemSize != 0 {
		if !e.Kernel && !t.DTLB.Access(e.MemVA>>fullsys.PageShift) {
			lat += uint64(t.cfg.TLBMissPenalty)
		}
		store := u.kind == microcode.UStore
		lat += uint64(t.DL1.Access(e.MemPA, store))
		if store && t.cfg.Shared != nil {
			// Stores consult the directory even on an L1 write hit: the
			// ownership upgrade a private write-back cache would hide.
			lat += uint64(t.cfg.Shared.Upgrade(t.cfg.CoreID, e.MemPA))
		}
	} else if u.kind == microcode.UStore {
		lat += uint64(t.cfg.StoreLatency)
	}
	return lat
}

// dispatch renames µops into the ROB/RS/LSQ, up to IssueWidth per cycle.
func (t *TM) dispatch(w *workCounts) {
	for n := 0; n < t.cfg.IssueWidth; n++ {
		u, ok := t.uopQ.Peek(t.cycle)
		if !ok {
			return
		}
		if len(t.rob) >= t.cfg.ROBEntries {
			t.Stats.ROBFullStalls++
			return
		}
		if t.rsCount >= t.cfg.RSEntries {
			t.Stats.RSFullStalls++
			return
		}
		if u.isMem && t.lsqCount >= t.cfg.LSQEntries {
			t.Stats.LSQFullStalls++
			return
		}
		t.uopQ.Get(t.cycle)
		u.dispatched = true
		t.rob = append(t.rob, u)
		t.rsCount++
		if u.isMem {
			t.lsqCount++
		}
		w.renamed++
	}
}

// decode cracks fetched instructions into µops via the microcode table and
// feeds the rename queue; bandwidth is IssueWidth µops per cycle.
func (t *TM) decode(w *workCounts) {
	for n := 0; n < t.cfg.IssueWidth; n++ {
		if len(t.decodeBuf) == 0 {
			ins, ok := t.fetchQ.Get(t.cycle)
			if !ok {
				return
			}
			t.decodeBuf = t.expand(ins)
		}
		u := t.decodeBuf[0]
		if !t.uopQ.Put(t.cycle, u) {
			return
		}
		t.renameDeps(u)
		t.decodeBuf = t.decodeBuf[1:]
		w.decoded++
	}
}

// expand cracks one instruction into its dynamic µop sequence (REP
// iterations repeated) from the trace entry's instantiated microcode.
func (t *TM) expand(ins *instr) []*uop {
	tmpl := ins.e.UOps
	iters := 1
	if ins.e.RepIterations > 1 {
		iters = int(ins.e.RepIterations)
	}
	out := make([]*uop, 0, len(tmpl)*iters)
	for it := 0; it < iters; it++ {
		for _, mu := range tmpl {
			u := &uop{
				ins:   ins,
				idx:   len(out),
				kind:  mu.Kind,
				class: mu.Kind.Class(),
				dst:   mu.Dst,
			}
			u.isMem = mu.Kind == microcode.ULoad || mu.Kind == microcode.UStore
			u.srcsFrom(mu)
			out = append(out, u)
		}
	}
	if len(out) == 0 {
		out = append(out, &uop{ins: ins, kind: microcode.UNop, class: isa.ClassALU})
	}
	out[len(out)-1].last = true
	ins.uopsLeft = len(out)
	return out
}

// srcsFrom records the µop's source register names for rename.
func (u *uop) srcsFrom(mu microcode.UOp) {
	u.srcA, u.srcB = mu.A, mu.B
	u.readsCC = mu.Kind == microcode.UBr && u.ins.e.ReadsCC
	u.writesCC = mu.WritesCC
}

// renameDeps links the µop to its producers through the register writer
// table (data dependencies only — names, not values: §2's orthogonality).
func (t *TM) renameDeps(u *uop) {
	look := func(r microcode.MReg) *uop {
		if r == microcode.MRegNone {
			return nil
		}
		return t.regWriter[r]
	}
	u.deps[0] = look(u.srcA)
	u.deps[1] = look(u.srcB)
	if u.readsCC {
		u.deps[2] = t.ccWriter
	}
	if u.dst != microcode.MRegNone {
		t.regWriter[u.dst] = u
	}
	if u.writesCC {
		t.ccWriter = u
	}
}

// fetch brings instructions from the trace source into the pipeline,
// modeling the iTLB, the iL1, branch prediction and the nested-branch
// limit.
func (t *TM) fetch(w *workCounts) {
	if t.recovering {
		t.Stats.DrainCycles++
		return
	}
	if t.cycle < t.refillUntil {
		t.Stats.DrainCycles++
		return
	}
	if t.cycle < t.icacheStallUntil {
		t.Stats.ICacheStalls++
		return
	}
	if t.ended {
		return
	}
	var lastLine isa.Word
	haveLine := false
	for n := 0; n < t.cfg.IssueWidth; n++ {
		if t.unresolved >= t.cfg.MaxNestedBranches {
			return
		}
		if !t.fetchQ.CanPut(t.cycle) {
			return
		}
		e, st := t.fetchEntry(t.fetchIN)
		switch st {
		case FetchWait:
			if n == 0 {
				t.Stats.FetchBubbles++
			}
			return
		case FetchEnd:
			t.ended = true
			return
		}
		// iTLB.
		if !e.Kernel && !t.ITLB.Access(e.PC>>fullsys.PageShift) {
			t.icacheStallUntil = t.cycle + uint64(t.cfg.TLBMissPenalty)
		}
		// One iL1 line per cycle: a second line ends the fetch group.
		line := e.PPC / isa.Word(t.cfg.L1I.LineBytes)
		if haveLine && line != lastLine {
			return
		}
		lat := t.IL1.Access(e.PPC, false)
		if lat > t.cfg.L1I.HitLatency {
			t.icacheStallUntil = t.cycle + uint64(lat)
		}
		lastLine, haveLine = line, true

		if e.TLBWrite {
			// Mirror software TLB fills into the timing structures (§2).
			t.DTLB.Insert(e.TLBVPN)
			t.ITLB.Insert(e.TLBVPN)
		}

		ins := &instr{e: e}
		if e.Exception {
			t.Stats.Exceptions++
			ins.serialize = true
		}
		if e.Interrupt {
			ins.serialize = true
		}
		hasBr := false
		for _, mu := range e.UOps {
			if mu.Kind == microcode.UBr {
				hasBr = true
				break
			}
		}
		if e.Branch && hasBr && !ins.serialize {
			pred := t.BP.Predict(e.PC, e.Taken, e.NextPC)
			if !e.Cond {
				// Unconditional control transfers don't consult the
				// direction predictor: a decode-stage front end knows they
				// are taken; only the target (BTB/RAS) can be wrong.
				pred.Taken = true
			}
			switch e.Op {
			case isa.OpCall, isa.OpCallR, isa.OpCallFar:
				t.ras[t.rasTop&7] = e.PC + isa.Word(e.Size)
				t.rasTop++
			case isa.OpRet:
				if t.rasTop > 0 {
					t.rasTop--
					pred = bpred.Prediction{Taken: true, Target: t.ras[t.rasTop&7], BTBHit: true}
				}
			}
			miss := t.BPStats.Record(pred, e.Taken, e.NextPC)
			w.predicted = true
			t.unresolved++
			if miss {
				t.Stats.Mispredicts++
				ins.mispredicted = true
				wrongPC := e.PC + isa.Word(e.Size)
				if pred.Taken && pred.BTBHit {
					wrongPC = pred.Target
				}
				t.dropView()
				t.ctl.Mispredict(e.IN+1, wrongPC)
			}
		}
		t.fetchQ.Put(t.cycle, ins)
		t.fetchIN = e.IN + 1
		w.fetched++

		takenBranch := e.Branch && e.Taken

		if ins.mispredicted || ins.serialize {
			if ins.serialize {
				t.Stats.Serializes++
			}
			t.recovering = true
			t.recoverIN = e.IN
			return
		}
		if takenBranch {
			return // the fetch group ends at a taken branch (redirect)
		}
		if t.cycle < t.icacheStallUntil {
			return // miss latency applies to the following fetch group
		}
	}
}

// PublishTelemetry flushes the timing model's statistics into tel as tm_*
// series: cycle/instruction/µop totals, per-class issue counts, stall
// reasons (pipeline-back-pressure events and front-end stall cycles) and
// predictor outcomes. It models the paper's dedicated statistics hardware
// (§3, §4.6): the counters accumulate beside the pipeline for free and are
// read out once, when the run finishes — the hot cycle loop is untouched.
// The coupled simulator calls it from its result builder; replay users can
// call it directly after Run.
func (t *TM) PublishTelemetry(tel *obs.Telemetry) {
	if tel == nil {
		return
	}
	// In a multicore target every series carries the core identity; a
	// single-core run keeps the unlabeled names so existing dashboards and
	// goldens are untouched.
	series := func(name string) string { return name }
	if t.cfg.Shared != nil {
		id := strconv.Itoa(t.cfg.CoreID)
		series = func(name string) string { return obs.AddLabel(name, "core", id) }
	}
	s := t.Stats
	tel.Counter(series("tm_cycles_total")).Add(s.Cycles)
	tel.Counter(series("tm_instructions_total")).Add(s.Instructions)
	tel.Counter(series("tm_uops_total")).Add(s.UOps)
	tel.Counter(series("tm_basic_blocks_total")).Add(s.BasicBlocks)
	tel.Counter(series("tm_exceptions_total")).Add(s.Exceptions)
	tel.Counter(series("tm_serializes_total")).Add(s.Serializes)

	// Front-end stall cycles by reason (cycles lost) and back-pressure
	// stall events by structure (dispatch attempts refused).
	tel.Counter(series(obs.L("tm_stall_cycles_total", "reason", "recovery_drain"))).Add(s.DrainCycles)
	tel.Counter(series(obs.L("tm_stall_cycles_total", "reason", "fetch_bubble"))).Add(s.FetchBubbles)
	tel.Counter(series(obs.L("tm_stall_cycles_total", "reason", "icache_miss"))).Add(s.ICacheStalls)
	tel.Counter(series(obs.L("tm_stalls_total", "structure", "rob_full"))).Add(s.ROBFullStalls)
	tel.Counter(series(obs.L("tm_stalls_total", "structure", "rs_full"))).Add(s.RSFullStalls)
	tel.Counter(series(obs.L("tm_stalls_total", "structure", "lsq_full"))).Add(s.LSQFullStalls)

	// Per-class issue counts — §3's "active functional units" query.
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if n := s.IssuedByClass[c]; n > 0 {
			tel.Counter(series(obs.L("tm_issued_uops_total", "class", c.String()))).Add(n)
		}
	}

	// Predictor outcomes (Figure 5's accuracy decomposed).
	bp := t.BPStats
	tel.Counter(series(obs.L("tm_bp_outcomes_total", "outcome", "correct"))).Add(bp.Correct)
	tel.Counter(series(obs.L("tm_bp_outcomes_total", "outcome", "direction_wrong"))).Add(bp.DirWrong)
	tel.Counter(series(obs.L("tm_bp_outcomes_total", "outcome", "target_wrong"))).Add(bp.TargetWrong)
	tel.Counter(series("tm_mispredicts_total")).Add(s.Mispredicts)
}

// ConnectorReport renders the §4 Connector statistics (throughput stalls,
// average occupancy) for the front-end connectors.
func (t *TM) ConnectorReport() string {
	report := func(name string, st ConnectorStats, cfg ConnectorConfig) string {
		avg := 0.0
		if st.Puts > 0 {
			avg = float64(st.OccupancySum) / float64(st.Puts)
		}
		return fmt.Sprintf("  %-14s lat=%d cap=%d puts=%d gets=%d putStalls=%d getStalls=%d avgOcc=%.2f\n",
			name, cfg.MinLatency, cfg.MaxTransactions, st.Puts, st.Gets,
			st.PutStalls, st.GetStalls, avg)
	}
	return "connectors:\n" +
		report(t.fetchQ.Name(), t.fetchQ.Stats(), t.fetchQ.Config()) +
		report(t.uopQ.Name(), t.uopQ.Stats(), t.uopQ.Config())
}

// Describe summarizes run statistics.
func (t *TM) Describe() string {
	s := t.Stats
	return fmt.Sprintf("cycles=%d inst=%d uops=%d IPC=%.3f bp=%.2f%% iL1=%.2f%% dL1=%.2f%% drains=%.1f%%",
		s.Cycles, s.Instructions, s.UOps, s.IPC(),
		t.BPStats.Accuracy()*100,
		t.IL1.Stats().HitRate()*100,
		t.DL1.Stats().HitRate()*100,
		100*float64(s.DrainCycles)/float64(max(1, s.Cycles)))
}
